"""Unit tests: the ``Verifier`` session — compile cache, observers, shims.

The cross-suite property (``CompiledProgram`` reuse returns results
identical to one-shot checks over the kernel registry) lives in
``tests/integration/test_verifier_session.py``; this module covers the
session mechanics on small programs.
"""

import pytest

from repro.addg import build_addg
from repro.checker import DiagnosticKind, check_addgs, check_equivalence
from repro.lang import parse_program
from repro.verifier import CallbackObserver, CheckObserver, CheckOptions, CompiledProgram, Verifier

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED_EQ = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""

TRANSFORMED_BAD = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
t1:     B[k] = A[k] + A[k+2];
}
"""

# Two outputs, one of them broken: exercises per-output observer events.
TWO_OUT_A = """
f(int A[], int C[], int D[]) {
    int k;
    for (k = 0; k < 8; k++) s1: C[k] = A[k] + 1;
    for (k = 0; k < 8; k++) s2: D[k] = A[k] + 2;
}
"""

TWO_OUT_B = """
f(int A[], int C[], int D[]) {
    int k;
    for (k = 0; k < 8; k++) t1: C[k] = A[k] + 1;
    for (k = 0; k < 8; k++) t2: D[k] = A[k] + 3;
}
"""

NOT_SINGLE_ASSIGNMENT = """
f(int A[], int B[]) {
    int k;
    for (k = 0; k < 8; k++) s1: B[0] = A[k];
}
"""


class TestCompile:
    def test_compile_source_text(self):
        verifier = Verifier()
        compiled = verifier.compile(ORIGINAL)
        assert isinstance(compiled, CompiledProgram)
        assert compiled.dataflow_issues == ()
        assert "B" in compiled.outputs

    def test_compile_parsed_program(self):
        program = parse_program(ORIGINAL)
        compiled = Verifier().compile(program)
        assert compiled.program is program

    def test_compile_is_cached_by_text(self):
        verifier = Verifier()
        first = verifier.compile(ORIGINAL)
        second = verifier.compile(ORIGINAL)
        assert first is second
        assert verifier.compile_hits == 1
        assert verifier.compile_misses == 1

    def test_compile_is_cached_by_program_identity(self):
        verifier = Verifier()
        program = parse_program(ORIGINAL)
        assert verifier.compile(program) is verifier.compile(program)

    def test_compiled_program_passes_through(self):
        verifier = Verifier()
        compiled = verifier.compile(ORIGINAL)
        assert verifier.compile(compiled) is compiled

    def test_clear_cache(self):
        verifier = Verifier()
        first = verifier.compile(ORIGINAL)
        verifier.clear_cache()
        assert verifier.compile(ORIGINAL) is not first

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            Verifier().compile(42)

    def test_dataflow_issues_reported(self):
        compiled = Verifier().compile(NOT_SINGLE_ASSIGNMENT)
        assert compiled.dataflow_issues

    def test_fingerprint_ignores_whitespace(self):
        reformatted = ORIGINAL.replace("    ", "  ")
        verifier = Verifier()
        assert verifier.compile(ORIGINAL).fingerprint == verifier.compile(reformatted).fingerprint


class TestCheck:
    def test_check_matches_one_shot_shim(self):
        verifier = Verifier()
        session = verifier.check(ORIGINAL, TRANSFORMED_EQ)
        one_shot = check_equivalence(ORIGINAL, TRANSFORMED_EQ)
        assert session.equivalent is one_shot.equivalent is True
        assert [r.to_dict() for r in session.outputs] == [r.to_dict() for r in one_shot.outputs]

    def test_check_uses_session_default_options(self):
        # + is commutative only under the extended method; a basic-method
        # session must reject the reordered operands.
        verifier = Verifier(options=CheckOptions(method="basic"))
        assert not verifier.check(ORIGINAL, TRANSFORMED_EQ).equivalent

    def test_per_call_options_override_session_default(self):
        verifier = Verifier(options=CheckOptions(method="basic"))
        result = verifier.check(ORIGINAL, TRANSFORMED_EQ, options=CheckOptions())
        assert result.equivalent

    def test_reuse_returns_identical_results(self):
        verifier = Verifier()
        first = verifier.check(ORIGINAL, TRANSFORMED_BAD)
        second = verifier.check(ORIGINAL, TRANSFORMED_BAD)
        assert first.to_dict()["outputs"] == second.to_dict()["outputs"]
        assert first.to_dict()["diagnostics"] == second.to_dict()["diagnostics"]
        # the second check found everything compiled already
        assert second.stats.frontend_seconds < first.stats.frontend_seconds or (
            second.stats.frontend_seconds == 0.0
        )

    def test_precondition_failure_short_circuits(self):
        result = Verifier().check(ORIGINAL, NOT_SINGLE_ASSIGNMENT)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.PRECONDITION)
        assert result.outputs == []
        assert result.stats.engine_seconds == 0.0

    def test_check_addgs_entry_point(self):
        original = build_addg(parse_program(ORIGINAL))
        transformed = build_addg(parse_program(TRANSFORMED_EQ))
        assert Verifier().check_addgs(original, transformed).equivalent

    def test_stats_split_sums_to_elapsed(self):
        result = Verifier().check(ORIGINAL, TRANSFORMED_EQ)
        assert result.stats.frontend_seconds > 0
        assert result.stats.engine_seconds > 0
        assert result.stats.elapsed_seconds == pytest.approx(
            result.stats.frontend_seconds + result.stats.engine_seconds
        )


class TestObservers:
    def test_output_checked_fires_once_per_output(self):
        reports = []
        result = Verifier().check(
            TWO_OUT_A, TWO_OUT_B, observer=CallbackObserver(on_output_checked=reports.append)
        )
        assert [r.array for r in reports] == [r.array for r in result.outputs]
        assert len(reports) == 2
        assert {r.array: r.equivalent for r in reports} == {"C": True, "D": False}

    def test_output_missing_from_both_sides_reports_once(self):
        # A focused request for an array neither program produces keeps one
        # diagnostic per side but must not double-count the output.
        reports = []
        result = Verifier().check(
            ORIGINAL,
            TRANSFORMED_EQ,
            options=CheckOptions(outputs=("Z",)),
            observer=CallbackObserver(on_output_checked=reports.append),
        )
        assert not result.equivalent
        assert [(r.array, r.equivalent) for r in result.outputs] == [("Z", False)]
        assert [(r.array, r.equivalent) for r in reports] == [("Z", False)]
        assert len(result.diagnostics_of_kind(DiagnosticKind.OUTPUT_MISSING)) == 2

    def test_missing_outputs_also_get_report_events(self):
        # B exists only in the original; D only in the transformed program.
        other = TRANSFORMED_EQ.replace("B[", "D[").replace("int B[]", "int D[]")
        reports = []
        result = Verifier().check(
            ORIGINAL, other, observer=CallbackObserver(on_output_checked=reports.append)
        )
        assert not result.equivalent
        assert {r.array for r in reports} == {"B", "D"}
        assert all(not r.equivalent for r in reports)
        assert [r.to_dict() for r in reports] == [r.to_dict() for r in result.outputs]

    def test_diagnostics_streamed_exactly_once(self):
        diagnostics = []
        result = Verifier().check(
            TWO_OUT_A, TWO_OUT_B, observer=CallbackObserver(on_diagnostic=diagnostics.append)
        )
        assert [id(d) for d in diagnostics] == [id(d) for d in result.diagnostics]

    def test_stats_fire_once_with_final_values(self):
        captured = []
        result = Verifier().check(
            ORIGINAL, TRANSFORMED_EQ, observer=CallbackObserver(on_stats=captured.append)
        )
        assert len(captured) == 1
        assert captured[0] is result.stats
        assert captured[0].elapsed_seconds == pytest.approx(
            captured[0].frontend_seconds + captured[0].engine_seconds
        )

    def test_session_observers_see_every_check(self):
        events = []
        verifier = Verifier(observers=[CallbackObserver(on_stats=events.append)])
        verifier.check(ORIGINAL, TRANSFORMED_EQ)
        verifier.check(ORIGINAL, TRANSFORMED_BAD)
        assert len(events) == 2

    def test_add_observer_and_subclass_protocol(self):
        class Recorder(CheckObserver):
            def __init__(self):
                self.outputs = []
                self.stats = []

            def on_output_checked(self, report):
                self.outputs.append(report.array)

            def on_stats(self, stats):
                self.stats.append(stats)

        recorder = Recorder()
        verifier = Verifier()
        verifier.add_observer(recorder)
        verifier.check(ORIGINAL, TRANSFORMED_EQ)
        assert recorder.outputs == ["B"]
        assert len(recorder.stats) == 1

    def test_observer_events_on_precondition_failure(self):
        diagnostics = []
        stats = []
        Verifier().check(
            ORIGINAL,
            NOT_SINGLE_ASSIGNMENT,
            observer=CallbackObserver(on_diagnostic=diagnostics.append, on_stats=stats.append),
        )
        assert diagnostics and diagnostics[0].kind == DiagnosticKind.PRECONDITION
        assert len(stats) == 1


class TestShims:
    def test_check_equivalence_kwargs_still_work(self):
        result = check_equivalence(
            ORIGINAL,
            TRANSFORMED_EQ,
            method="extended",
            outputs=["B"],
            correspondences=[],
            tabling=True,
            check_preconditions=True,
        )
        assert result.equivalent

    def test_check_addgs_missing_output_reports(self):
        # Satellite regression: an output array missing on one side must
        # produce a non-equivalent OutputReport, not only a diagnostic.
        original = build_addg(parse_program(ORIGINAL))
        other = build_addg(
            parse_program(TRANSFORMED_EQ.replace("B[", "D[").replace("int B[]", "int D[]"))
        )
        result = check_addgs(original, other)
        assert not result.equivalent
        assert {r.array for r in result.outputs} == {"B", "D"}
        assert all(not r.equivalent for r in result.outputs)
        assert len(result.diagnostics_of_kind(DiagnosticKind.OUTPUT_MISSING)) == 2
