"""Unit tests for access maps and dependency mappings (incl. the paper's worked example)."""

import pytest

from repro.analysis import access_map, defined_set, dependency_map, statement_contexts, write_access_map
from repro.lang import parse_program
from repro.lang.ast import array_reads
from repro.presburger import parse_map, parse_set
from repro.workloads import fig1_program


def context(program, label):
    for c in statement_contexts(program):
        if c.label == label:
            return c
    raise KeyError(label)


class TestPaperWorkedExample:
    """Section 3.2: dependency mappings of statement s2 and the reduction of tmp."""

    def setup_method(self):
        self.program = fig1_program("a", 1024)

    def test_s2_dependency_mappings(self):
        s2 = context(self.program, "s2")
        reads = array_reads(s2.assignment.rhs)
        # first operand: A[2*k - 2]
        m_buf_a1 = dependency_map(s2, reads[0])
        assert m_buf_a1.is_equal(
            parse_map("{ [x] -> [y] : x = 2k - 2 and y = 2k - 2 and 1 <= k <= 1024 }")
        )
        # second operand: A[k - 1]
        m_buf_a2 = dependency_map(s2, reads[1])
        assert m_buf_a2.is_equal(
            parse_map("{ [x] -> [y] : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")
        )

    def test_intermediate_variable_reduction_of_tmp(self):
        # M_C,tmp composed with M_tmp,B1 must equal {[k] -> [2k] : 0 <= k < 1024}.
        s3 = context(self.program, "s3")
        s1 = context(self.program, "s1")
        m_c_tmp = dependency_map(s3, array_reads(s3.assignment.rhs)[0])
        m_tmp_b1 = dependency_map(s1, array_reads(s1.assignment.rhs)[0])
        m_c_b = m_c_tmp.compose(m_tmp_b1)
        assert m_c_b.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 1024 }"))

    def test_s3_buf_dependency(self):
        s3 = context(self.program, "s3")
        m_c_buf = dependency_map(s3, array_reads(s3.assignment.rhs)[1])
        assert m_c_buf.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 1024 }"))


class TestAccessMaps:
    def test_write_access_map(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=1;k<=4;k++) s1: C[2*k - 2] = A[k]; }"
        )
        s1 = context(program, "s1")
        write = write_access_map(s1)
        assert sorted(write.pairs()) == [((k,), (2 * k - 2,)) for k in range(1, 5)]

    def test_defined_set(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=1;k<=4;k++) s1: C[2*k - 2] = A[k]; }"
        )
        s1 = context(program, "s1")
        assert sorted(defined_set(s1).points()) == [(0,), (2,), (4,), (6,)]

    def test_read_access_map_restricted_to_domain(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 0; k < 8; k++)
                    if (k < 3)
            s1:         C[k] = A[k + 5];
            }
            """
        )
        s1 = context(program, "s1")
        read = access_map(s1, array_reads(s1.assignment.rhs)[0])
        assert sorted(read.pairs()) == [((0,), (5,)), ((1,), (6,)), ((2,), (7,))]

    def test_multidimensional_access(self):
        program = parse_program(
            """
            f(int A[4][4], int C[]) {
                int i, j, t[4][4];
                for (i = 0; i < 2; i++)
                    for (j = 0; j < 2; j++)
            s1:         t[i][j] = A[j][i];
                for (i = 0; i < 2; i++)
            s2:     C[i] = t[i][1];
            }
            """
        )
        s1 = context(program, "s1")
        dep = dependency_map(s1, array_reads(s1.assignment.rhs)[0])
        # t[i][j] depends on A[j][i]: the mapping transposes the coordinates.
        assert dep.contains([0, 1], [1, 0])
        assert not dep.contains([0, 1], [0, 1])

    def test_dependency_map_of_strided_statement(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<16;k+=2) s1: C[k] = A[k + 1]; }"
        )
        s1 = context(program, "s1")
        dep = dependency_map(s1, array_reads(s1.assignment.rhs)[0])
        assert dep.is_equal(parse_map("{ [x] -> [x + 1] : exists j : x = 2j and 0 <= x < 16 }"))

    def test_dependency_map_on_empty_domain(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<8;k++) if (k > 100) s1: C[k] = A[k]; }"
        )
        s1 = context(program, "s1")
        dep = dependency_map(s1, array_reads(s1.assignment.rhs)[0])
        assert dep.is_empty()
