"""Unit tests for the data-flow prerequisites (single assignment, coverage, def-use order)."""

import pytest

from repro.analysis import (
    check_coverage,
    check_dataflow,
    check_def_use_order,
    check_single_assignment,
    written_set_by_array,
    statement_contexts,
)
from repro.lang import parse_program
from repro.workloads import FIG1_SOURCES, fig1_program, kernel_pair


class TestSingleAssignment:
    def test_fig1_versions_are_single_assignment(self):
        for version in "abcd":
            assert check_single_assignment(fig1_program(version, 64)) == []

    def test_same_statement_overwrite_detected(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[0] = A[k]; }"
        )
        issues = check_single_assignment(program)
        assert any("single-assignment" in issue for issue in issues)

    def test_two_statements_overlapping_writes_detected(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 0; k < 8; k++)
            s1:     C[k] = A[k];
                for (k = 4; k < 12; k++)
            s2:     C[k] = A[k + 1];
            }
            """
        )
        issues = check_single_assignment(program)
        assert any("s1" in issue and "s2" in issue for issue in issues)

    def test_disjoint_piecewise_writes_accepted(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 0; k < 4; k++)
            s1:     C[k] = A[k];
                for (k = 4; k < 8; k++)
            s2:     C[k] = A[k];
            }
            """
        )
        assert check_single_assignment(program) == []


class TestCoverage:
    def test_reading_written_elements_is_fine(self):
        assert check_coverage(fig1_program("a", 64)) == []

    def test_reading_never_written_array(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[8];
                for (k = 0; k < 8; k++)
            s2:     C[k] = t[k];
            }
            """
        )
        issues = check_coverage(program)
        assert any("never written" in issue for issue in issues)

    def test_reading_beyond_written_range(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[16];
                for (k = 0; k < 4; k++)
            s1:     t[k] = A[k];
                for (k = 0; k < 8; k++)
            s2:     C[k] = t[k];
            }
            """
        )
        issues = check_coverage(program)
        assert any("undefined elements" in issue for issue in issues)

    def test_inputs_never_flagged(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s1: C[k] = A[k + 100]; }"
        )
        assert check_coverage(program) == []


class TestDefUseOrder:
    def test_fig1_versions_pass(self):
        for version in "abcd":
            assert check_def_use_order(fig1_program(version, 64)) == []

    def test_recurrence_kernels_pass(self):
        pair = kernel_pair("prefix_sum", n=16)
        assert check_def_use_order(pair.original) == []
        assert check_def_use_order(pair.transformed) == []

    def test_use_before_def_across_loops(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[8];
                for (k = 0; k < 8; k++)
            s1:     C[k] = t[k];
                for (k = 0; k < 8; k++)
            s2:     t[k] = A[k];
            }
            """
        )
        issues = check_def_use_order(program)
        assert any("before" in issue for issue in issues)

    def test_forward_recurrence_reading_future_value(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[10];
                for (k = 0; k < 8; k++)
            s1:     t[k] = t[k + 1] + A[k];
                for (k = 0; k < 8; k++)
            s2:     C[k] = t[k];
            }
            """
        )
        issues = check_def_use_order(program)
        assert issues

    def test_same_iteration_write_then_read_is_fine(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[8];
                for (k = 0; k < 8; k++) {
            s1:     t[k] = A[k];
            s2:     C[k] = t[k];
                }
            }
            """
        )
        assert check_def_use_order(program) == []

    def test_same_iteration_read_then_write_is_flagged(self):
        program = parse_program(
            """
            f(int A[], int C[]) {
                int k, t[8];
                for (k = 0; k < 8; k++) {
            s1:     C[k] = t[k];
            s2:     t[k] = A[k];
                }
            }
            """
        )
        assert check_def_use_order(program)


class TestDataflowDriver:
    def test_all_fig1_versions_pass_all_checks(self):
        for version in "abcd":
            assert check_dataflow(fig1_program(version, 64)) == []

    def test_written_set_by_array(self):
        contexts = statement_contexts(fig1_program("a", 64))
        written = written_set_by_array(contexts)
        assert set(written) == {"tmp", "buf", "C"}
        assert written["C"].count() == 64
