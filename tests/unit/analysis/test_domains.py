"""Unit tests for iteration-domain and schedule extraction."""

import pytest

from repro.analysis import statement_contexts
from repro.lang import parse_program
from repro.presburger import parse_set
from repro.workloads import fig1_program


def contexts_of(source):
    return {c.label: c for c in statement_contexts(parse_program(source))}


class TestIterationDomains:
    def test_fig1_original_domains(self):
        contexts = {c.label: c for c in statement_contexts(fig1_program("a", 1024))}
        assert contexts["s1"].domain.is_equal(parse_set("{ [k] : 0 <= k < 1024 }"))
        assert contexts["s2"].domain.is_equal(parse_set("{ [k] : 1 <= k <= 1024 }"))
        assert contexts["s3"].domain.is_equal(parse_set("{ [k] : 0 <= k < 1024 }"))

    def test_strided_loop_domain(self):
        contexts = contexts_of(
            "f(int A[], int C[]) { int k; for(k=0;k<16;k+=4) s1: C[k] = A[k]; }"
        )
        domain = contexts["s1"].domain
        assert sorted(domain.points()) == [(0,), (4,), (8,), (12,)]

    def test_decrementing_loop_domain(self):
        contexts = contexts_of(
            "f(int A[], int C[]) { int k; for(k=9;k>=3;k--) s1: C[k] = A[k]; }"
        )
        assert sorted(contexts["s1"].domain.points()) == [(k,) for k in range(3, 10)]

    def test_if_condition_refines_domain(self):
        contexts = contexts_of(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 0; k < 10; k++) {
                    if (k < 4)
            s1:         C[k] = A[k];
                    else
            s2:         C[k] = A[k + 1];
                }
            }
            """
        )
        assert sorted(contexts["s1"].domain.points()) == [(k,) for k in range(4)]
        assert sorted(contexts["s2"].domain.points()) == [(k,) for k in range(4, 10)]

    def test_nested_loops_and_triangular_bounds(self):
        contexts = contexts_of(
            """
            f(int A[], int C[]) {
                int i, j, t[6][6];
                for (i = 0; i < 4; i++)
                    for (j = 0; j <= i; j++)
            s1:         t[i][j] = A[j];
                for (i = 0; i < 4; i++)
            s2:     C[i] = t[i][0];
            }
            """
        )
        domain = contexts["s1"].domain
        assert set(domain.points()) == {(i, j) for i in range(4) for j in range(i + 1)}
        assert contexts["s1"].iterators == ("i", "j")

    def test_statement_outside_loops(self):
        contexts = contexts_of("f(int A[], int C[]) { s1: C[0] = A[0]; }")
        assert contexts["s1"].iterators == ()
        assert not contexts["s1"].domain.is_empty()

    def test_unlabelled_statements_get_fresh_labels(self):
        contexts = statement_contexts(
            parse_program("f(int A[], int C[]) { int k; for(k=0;k<4;k++) C[k] = A[k]; }")
        )
        assert len(contexts) == 1
        assert contexts[0].label.startswith("__stmt")


class TestSchedules:
    def test_textual_order_is_reflected(self):
        contexts = {c.label: c for c in statement_contexts(fig1_program("a", 16))}
        # s1, s2, s3 are three successive top-level loops: their first static
        # schedule dimension must be strictly increasing.
        first_dims = [contexts[label].schedule[0].const for label in ("s1", "s2", "s3")]
        assert first_dims == sorted(first_dims)
        assert len(set(first_dims)) == 3

    def test_schedule_length_matches_depth(self):
        contexts = contexts_of(
            """
            f(int A[], int C[]) {
                int i, j, t[4][4];
                for (i = 0; i < 4; i++)
                    for (j = 0; j < 4; j++)
            s1:         t[i][j] = A[i];
                for (i = 0; i < 4; i++)
            s2:     C[i] = t[i][0];
            }
            """
        )
        # 2d+1 encoding: depth-2 statement has 5 schedule dims, depth-1 has 3.
        assert len(contexts["s1"].schedule) == 5
        assert len(contexts["s2"].schedule) == 3

    def test_negative_step_schedule_uses_loop_time(self):
        contexts = contexts_of(
            "f(int A[], int C[]) { int k; for(k=9;k>=0;k--) s1: C[k] = A[k]; }"
        )
        time_expr = contexts["s1"].schedule[1]
        # time = (init - k) for a downward loop: increasing over execution.
        assert time_expr.coeff("k") == -1
