"""Unit tests for corpus persistence and the job bridge."""

import json

from repro.scenarios import (
    ScenarioSpec,
    build_scenarios,
    corpus_digest,
    read_corpus,
    scenario_jobs,
    serialize_pair,
    write_corpus,
)
from repro.service import job_fingerprint
from repro.verifier import CheckOptions

SPEC = ScenarioSpec(seed=5, pairs=6, mutation_rate=0.5, size=12)


class TestCorpusPersistence:
    def test_write_read_roundtrip(self, tmp_path):
        pairs = build_scenarios(SPEC)
        path = tmp_path / "corpus.jsonl"
        write_corpus(str(path), pairs)
        recovered = read_corpus(str(path))
        assert corpus_digest(recovered) == corpus_digest(pairs)
        assert [p.name for p in recovered] == [p.name for p in pairs]
        assert [p.expected_label for p in recovered] == [p.expected_label for p in pairs]

    def test_serialized_rows_are_canonical_json(self):
        pairs = build_scenarios(SPEC)
        for pair in pairs:
            row = serialize_pair(pair)
            assert json.loads(row)["name"] == pair.name
            assert row == json.dumps(json.loads(row), sort_keys=True, separators=(",", ":"))

    def test_trace_and_oracle_survive_roundtrip(self, tmp_path):
        pairs = build_scenarios(SPEC)
        path = tmp_path / "corpus.jsonl"
        write_corpus(str(path), pairs)
        for before, after in zip(pairs, read_corpus(str(path))):
            assert [s.to_dict() for s in after.trace] == [s.to_dict() for s in before.trace]
            assert after.oracle == before.oracle
            assert after.mutation == before.mutation
            assert after.original == before.original
            assert after.transformed == before.transformed


class TestScenarioJobs:
    def test_jobs_carry_labels_and_provenance(self):
        pairs = build_scenarios(SPEC)
        jobs = scenario_jobs(pairs)
        assert len(jobs) == len(pairs)
        for pair, job in zip(pairs, jobs):
            assert job.name == pair.name
            assert job.expected_equivalent == pair.expected_equivalent
            assert job.metadata["source"] == "scenario"
            assert job.metadata["expected_label"] == pair.expected_label
            assert job.metadata["oracle"]["label"] == pair.oracle.label
            assert job.metadata["trace"] == [s.to_dict() for s in pair.trace]

    def test_jobs_from_disk_fingerprint_identically(self, tmp_path):
        pairs = build_scenarios(SPEC)
        path = tmp_path / "corpus.jsonl"
        write_corpus(str(path), pairs)
        fresh = scenario_jobs(pairs)
        reloaded = scenario_jobs(read_corpus(str(path)))
        assert [job_fingerprint(a) for a in fresh] == [job_fingerprint(b) for b in reloaded]

    def test_jobs_use_given_options(self):
        pairs = build_scenarios(SPEC)[:2]
        options = CheckOptions(method="basic")
        for job in scenario_jobs(pairs, options=options):
            assert job.options is options
            assert job.method == "basic"
