"""Unit tests for the scenario engine's corpus construction."""

import pytest

from repro.scenarios import (
    LABEL_EQUIVALENT,
    LABEL_NOT_EQUIVALENT,
    ScenarioSpec,
    build_scenarios,
    differential_label,
)

SPEC = ScenarioSpec(seed=3, pairs=12, max_depth=3, mutation_rate=0.5, size=14)


@pytest.fixture(scope="module")
def corpus():
    return build_scenarios(SPEC)


class TestBuildScenarios:
    def test_every_scenario_emits_an_equivalent_pair(self, corpus):
        equivalent = [p for p in corpus if p.expected_label == LABEL_EQUIVALENT]
        assert len(equivalent) == SPEC.pairs
        assert len({p.name for p in corpus}) == len(corpus)

    def test_labels_match_mutation_presence(self, corpus):
        for pair in corpus:
            if pair.expected_label == LABEL_NOT_EQUIVALENT:
                assert pair.mutation is not None
                assert pair.name.endswith("-bug")
                assert pair.trace and pair.trace[-1].name == "mutation"
            else:
                assert pair.mutation is None

    def test_buggy_twins_are_oracle_validated(self, corpus):
        buggy = [p for p in corpus if p.expected_label == LABEL_NOT_EQUIVALENT]
        assert buggy, "mutation_rate=0.5 over 12 scenarios should yield twins"
        for pair in buggy:
            assert pair.oracle is not None
            assert pair.oracle.label == LABEL_NOT_EQUIVALENT
            assert pair.oracle.witness_seed is not None

    def test_equivalent_pairs_agree_with_oracle(self, corpus):
        for pair in corpus:
            if pair.expected_label == LABEL_EQUIVALENT:
                assert pair.oracle is not None
                assert pair.oracle.label == LABEL_EQUIVALENT, (
                    f"{pair.name}: pipeline {[s.name for s in pair.trace]} "
                    "produced a non-equivalent variant"
                )

    def test_pipeline_depth_is_bounded(self, corpus):
        for pair in corpus:
            structural = [s for s in pair.trace if s.name != "mutation"]
            assert len(structural) <= SPEC.max_depth

    def test_oracle_verdicts_replay(self, corpus):
        # The stored verdict is reproducible from the stored programs alone.
        for pair in corpus[:6]:
            fresh = differential_label(
                pair.original, pair.transformed,
                trials=SPEC.oracle_trials, base_seed=SPEC.oracle_seed,
            )
            assert fresh == pair.oracle

    def test_twin_shares_base_with_its_scenario(self, corpus):
        by_name = {p.name: p for p in corpus}
        for pair in corpus:
            if pair.name.endswith("-bug"):
                parent = by_name[pair.name[: -len("-bug")]]
                assert pair.base == parent.base
                assert pair.original == parent.original

    def test_kernel_bases_appear(self):
        pairs = build_scenarios(
            ScenarioSpec(seed=1, pairs=20, kernel_fraction=0.5, size=12)
        )
        kinds = {p.base.split("/")[0] for p in pairs}
        assert kinds == {"gen", "kernel"}
