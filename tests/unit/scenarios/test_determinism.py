"""Determinism regressions: same seed => byte-identical corpora, everywhere.

The PR-1 class of bugs — randomness routed through ``hash()`` (set/dict
iteration order, ``rng.choice(set)``) — breaks reproducibility *across
processes* while looking perfectly deterministic within one.  These tests
therefore re-derive corpus digests and mutation/reassociation choices in
subprocesses pinned to different ``PYTHONHASHSEED`` values and require
byte-identical results.
"""

import os
import subprocess
import sys

from repro.scenarios import ScenarioSpec, build_scenarios, corpus_digest, serialize_pair

SPEC = ScenarioSpec(seed=11, pairs=8, mutation_rate=0.6, size=12)


def _run_under_hash_seed(code: str, hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=os.path.join(os.path.dirname(__file__), "..", "..", ".."),
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


CORPUS_DIGEST_CODE = """
from repro.scenarios import ScenarioSpec, build_scenarios, corpus_digest
spec = ScenarioSpec(seed=11, pairs=8, mutation_rate=0.6, size=12)
print(corpus_digest(build_scenarios(spec)))
"""

MUTATION_CHOICE_CODE = """
import random
from repro.transforms import random_mutation, random_reassociation
from repro.transforms.algebraic import collect_chain
from repro.lang import program_to_text
from repro.workloads import RandomProgramGenerator
program = RandomProgramGenerator(seed=4, stages=3, size=12).generate()
mutated, mutation = random_mutation(program, random.Random(21))
label = next(
    a.label for a in program.assignments()
    if a.label and len(collect_chain(a.rhs, "+")) >= 2
)
reassociated = random_reassociation(program, label, random.Random(22))
print(mutation.kind, mutation.label, mutation.description, sep="|")
print(hash_free := __import__("hashlib").sha256(
    (program_to_text(mutated) + program_to_text(reassociated)).encode()).hexdigest())
"""


class TestSameProcessDeterminism:
    def test_same_spec_same_bytes(self):
        first = build_scenarios(SPEC)
        second = build_scenarios(SPEC)
        assert [serialize_pair(a) for a in first] == [serialize_pair(b) for b in second]

    def test_different_seed_different_corpus(self):
        first = build_scenarios(SPEC)
        other = build_scenarios(ScenarioSpec(**{**SPEC.to_dict(), "seed": 12, "stages_range": tuple(SPEC.stages_range), "kernels": tuple(SPEC.kernels)}))
        assert corpus_digest(first) != corpus_digest(other)

    def test_corpus_grows_by_prefix(self):
        # More pairs must extend, never reshuffle, the earlier scenarios.
        small = build_scenarios(ScenarioSpec(seed=11, pairs=4, mutation_rate=0.6, size=12))
        large = build_scenarios(ScenarioSpec(seed=11, pairs=8, mutation_rate=0.6, size=12))
        prefix = [p for p in large if int(p.name.split("/")[1].split("-")[0]) < 4]
        assert [serialize_pair(p) for p in small] == [serialize_pair(p) for p in prefix]


class TestCrossProcessDeterminism:
    def test_corpus_digest_is_hash_seed_independent(self):
        digests = {
            _run_under_hash_seed(CORPUS_DIGEST_CODE, hash_seed)
            for hash_seed in ("0", "1", "4242")
        }
        assert len(digests) == 1
        assert digests == {corpus_digest(build_scenarios(SPEC))}

    def test_mutation_and_reassociation_choices_are_hash_seed_independent(self):
        outputs = {
            _run_under_hash_seed(MUTATION_CHOICE_CODE, hash_seed)
            for hash_seed in ("0", "7")
        }
        assert len(outputs) == 1
