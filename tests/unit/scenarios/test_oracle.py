"""Unit tests for the differential interpreter oracle."""

from repro.lang import parse_program
from repro.scenarios import (
    LABEL_EQUIVALENT,
    LABEL_NOT_EQUIVALENT,
    LABEL_UNKNOWN,
    OracleVerdict,
    differential_label,
)
from repro.transforms import loop_reversal, perturb_read_index

SOURCE = """
void f(int a[], int out[])
{
    int i;
    for (i = 0; i < 12; i++) {
f1:     out[i] = a[i] + a[i + 1];
    }
}
"""

BROKEN_SOURCE = """
void g(int a[], int out[])
{
    int i, t[4];
    for (i = 0; i < 4; i++) {
g1:     out[i] = t[i] + a[i];
    }
}
"""


class TestDifferentialLabel:
    def test_equivalent_pair(self):
        program = parse_program(SOURCE)
        verdict = differential_label(program, loop_reversal(program, "f1"), trials=3)
        assert verdict.label == LABEL_EQUIVALENT
        assert verdict.trials == 3
        assert verdict.witness_seed is None
        assert not verdict.distinguished

    def test_identity_pair(self):
        program = parse_program(SOURCE)
        verdict = differential_label(program, program.clone())
        assert verdict.label == LABEL_EQUIVALENT

    def test_mutated_pair_is_distinguished_with_witness(self):
        program = parse_program(SOURCE)
        mutated, _ = perturb_read_index(program, "f1")
        verdict = differential_label(program, mutated, trials=3)
        assert verdict.label == LABEL_NOT_EQUIVALENT
        assert verdict.distinguished
        assert verdict.witness_seed is not None

    def test_transformed_runtime_error_is_distinguishing(self):
        good = parse_program(SOURCE)
        # Same output array, but reads an undefined local: observably broken.
        bad = parse_program(BROKEN_SOURCE.replace("void g", "void f").replace("out[i] = t[i] + a[i]", "out[i] = t[i + 20] + a[i]"))
        verdict = differential_label(good, bad)
        assert verdict.label == LABEL_NOT_EQUIVALENT
        assert "failed" in verdict.detail

    def test_original_runtime_error_abstains(self):
        broken = parse_program(BROKEN_SOURCE)
        verdict = differential_label(broken, broken.clone())
        assert verdict.label == LABEL_UNKNOWN
        assert verdict.witness_seed is None

    def test_verdict_dict_roundtrip(self):
        program = parse_program(SOURCE)
        mutated, _ = perturb_read_index(program, "f1")
        verdict = differential_label(program, mutated)
        assert OracleVerdict.from_dict(verdict.to_dict()) == verdict

    def test_determinism(self):
        program = parse_program(SOURCE)
        mutated, _ = perturb_read_index(program, "f1")
        first = differential_label(program, mutated, trials=4, base_seed=7)
        second = differential_label(program, mutated, trials=4, base_seed=7)
        assert first == second
