"""The assembled diagnosis: build_failure_report, Verifier.diagnose, the
service hook and the observer protocol extension."""

from repro.diagnostics import FailureReport, attach_failure_report, build_failure_report, diagnose
from repro.lang import parse_program
from repro.service import BatchExecutor, VerificationJob
from repro.verifier import CallbackObserver, CheckObserver, Verifier

ORIGINAL = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i] + 1;
  }
}
"""

BUGGY = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 2;
  }
}
"""

EQUIVALENT = """
#define N 8
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 1;
  }
}
"""


class TestBuildFailureReport:
    def test_non_equivalent_pair_is_confirmed_with_paths(self):
        verifier = Verifier()
        result = verifier.check(ORIGINAL, BUGGY)
        assert not result.equivalent
        report = build_failure_report(ORIGINAL, BUGGY, result)
        assert not report.equivalent
        assert report.confirmed
        assert report.replay is not None and report.replay.diverged
        cell = report.replay.first_divergence
        assert cell.array == "C"
        assert cell.original_statement == "s2"
        assert cell.transformed_statement == "t1"
        [witness] = report.outputs
        assert witness.array == "C"
        assert witness.original_path[0].startswith("C[")
        assert witness.original_path[-1].startswith("A[")

    def test_equivalent_result_yields_an_empty_report(self):
        verifier = Verifier()
        result = verifier.check(ORIGINAL, EQUIVALENT)
        assert result.equivalent
        report = build_failure_report(ORIGINAL, EQUIVALENT, result)
        assert report.equivalent
        assert not report.confirmed
        assert report.outputs == [] and report.replay is None

    def test_accepts_source_text_and_programs(self):
        verifier = Verifier()
        result = verifier.check(ORIGINAL, BUGGY)
        from_text = build_failure_report(ORIGINAL, BUGGY, result)
        from_programs = build_failure_report(
            parse_program(ORIGINAL), parse_program(BUGGY), result
        )
        assert from_text.confirmed == from_programs.confirmed

    def test_witness_seed_replays_first(self):
        verifier = Verifier()
        result = verifier.check(ORIGINAL, BUGGY)
        report = build_failure_report(ORIGINAL, BUGGY, result, witness_seed=17)
        assert report.replay.seed == 17


class TestVerifierDiagnose:
    def test_diagnose_runs_the_check_when_no_result_is_given(self):
        report = Verifier().diagnose(ORIGINAL, BUGGY)
        assert isinstance(report, FailureReport)
        assert report.confirmed

    def test_diagnose_streams_through_the_observer_protocol(self):
        reports = []
        observer = CallbackObserver(on_failure_report=reports.append)
        verifier = Verifier(observers=[observer])
        verifier.diagnose(ORIGINAL, BUGGY)
        assert len(reports) == 1 and reports[0].confirmed

    def test_base_observer_hook_is_a_no_op(self):
        CheckObserver().on_failure_report(FailureReport(equivalent=False, confirmed=False))

    def test_one_shot_diagnose_convenience(self):
        report = diagnose(ORIGINAL, BUGGY)
        assert report.confirmed

    def test_diagnose_reuses_a_given_result(self):
        verifier = Verifier()
        result = verifier.check(ORIGINAL, BUGGY)
        report = verifier.diagnose(ORIGINAL, BUGGY, result=result)
        assert report.confirmed


class TestAttachFailureReport:
    def _run(self, name, original, transformed, expected=None):
        job = VerificationJob(
            name=name,
            original_source=original,
            transformed_source=transformed,
            expected_equivalent=expected,
        )
        [outcome] = BatchExecutor(cache=None).run([job])
        return job, outcome

    def test_attaches_a_serialised_report_to_failing_jobs(self):
        job, outcome = self._run("pair/buggy", ORIGINAL, BUGGY, expected=False)
        report = attach_failure_report(outcome, job)
        assert report is not None and report.confirmed
        block = outcome.metadata["failure_report"]
        assert block["confirmed"] is True
        assert FailureReport.from_dict(block).confirmed

    def test_skips_equivalent_outcomes(self):
        job, outcome = self._run("pair/ok", ORIGINAL, EQUIVALENT, expected=True)
        assert attach_failure_report(outcome, job) is None
        assert "failure_report" not in outcome.metadata

    def test_skips_unmatched_jobs(self):
        _job, outcome = self._run("pair/buggy", ORIGINAL, BUGGY)
        assert attach_failure_report(outcome, None) is None
