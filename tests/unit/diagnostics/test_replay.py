"""Differential replay and ADDG dependency paths."""

from repro.addg import build_addg
from repro.diagnostics import dependency_path, divergent_cells, replay_divergence
from repro.lang import parse_program

ORIGINAL = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i] + 1;
  }
}
"""

# Same computation, fused (genuinely equivalent).
EQUIVALENT = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 1;
  }
}
"""

# Off-by-one constant: every cell diverges.
BUGGY = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  for (i = 0; i < N; i++) {
t1: C[i] = A[i] * 2 + 2;
  }
}
"""

# Reads past the defined range: crashes at runtime on the last iteration.
CRASHING = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
t1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
t2: C[i] = tmp[i + 1] + 1;
  }
}
"""


class TestReplayDivergence:
    def test_equivalent_pair_does_not_diverge(self):
        result, diffs = replay_divergence(
            parse_program(ORIGINAL), parse_program(EQUIVALENT), seeds=[0, 1, 2]
        )
        assert not result.diverged
        assert diffs == {}

    def test_buggy_pair_diverges_with_writer_labels(self):
        result, diffs = replay_divergence(
            parse_program(ORIGINAL), parse_program(BUGGY), seeds=[0]
        )
        assert result.diverged
        assert result.divergence_count == 6
        cell = result.first_divergence
        assert cell.array == "C" and cell.index == (0,)
        assert cell.original_statement == "s2"
        assert cell.transformed_statement == "t1"
        assert cell.transformed_value == cell.original_value + 1
        assert (0,) in diffs["C"]

    def test_crashing_transformed_counts_as_divergence(self):
        result, _diffs = replay_divergence(
            parse_program(ORIGINAL), parse_program(CRASHING), seeds=[0]
        )
        assert result.diverged
        assert result.transformed_error is not None
        assert result.transformed_error_statement == "t2"

    def test_crashing_original_is_inconclusive(self):
        result, _diffs = replay_divergence(
            parse_program(CRASHING), parse_program(ORIGINAL), seeds=[0, 1]
        )
        assert not result.diverged
        assert result.original_error is not None
        assert result.original_error_statement == "t2"

    def test_early_original_crash_survives_a_clean_later_seed(self):
        # The original divides by (A[i] + 64): under replay's -64..64 input
        # range it crashes on seed 0 (some A[i] == -64) but runs cleanly on
        # seed 1.  With no divergence found, the returned result must still
        # carry the seed-0 failure so the report can flag the sweep as
        # partly inconclusive instead of silently saying "no divergence".
        source = """
        #define N 6
        void f(int A[N], int C[N])
        {
          int i;
          for (i = 0; i < N; i++) {
        u1: C[i] = A[i] / (A[i] + 64);
          }
        }
        """
        program = parse_program(source)
        result, diffs = replay_divergence(program, program, seeds=[0, 1])
        assert not result.diverged and diffs == {}
        assert result.seed == 0
        assert result.original_error is not None
        assert result.original_error_statement == "u1"

    def test_seed_of_the_distinguishing_run_is_reported(self):
        result, _ = replay_divergence(
            parse_program(ORIGINAL), parse_program(BUGGY), seeds=[7, 8]
        )
        assert result.seed == 7


class TestDivergentCells:
    def test_missing_cells_are_diverging(self):
        diffs = divergent_cells({"C": {(0,): 1, (1,): 2}}, {"C": {(0,): 1}})
        assert diffs == {"C": {(1,): (2, None)}}

    def test_equal_environments_have_no_diffs(self):
        assert divergent_cells({"C": {(0,): 1}}, {"C": {(0,): 1}}) == {}

    def test_arrays_on_one_side_only(self):
        diffs = divergent_cells({"C": {(0,): 1}}, {})
        assert diffs == {"C": {(0,): (1, None)}}


class TestDependencyPath:
    def test_walks_through_the_intermediate_to_the_input(self):
        addg = build_addg(parse_program(ORIGINAL))
        path = dependency_path(addg, "C", (3,))
        assert path == ("C[3]", "s2", "tmp[3]", "s1", "A[3]")

    def test_stops_at_the_input_array(self):
        addg = build_addg(parse_program(EQUIVALENT))
        path = dependency_path(addg, "C", (0,))
        assert path == ("C[0]", "t1", "A[0]")

    def test_cell_outside_every_domain_has_a_bare_path(self):
        addg = build_addg(parse_program(ORIGINAL))
        assert dependency_path(addg, "C", (99,)) == ("C[99]",)
