"""Witness synthesis from rendered Presburger mismatch sets."""

from repro.checker.result import EquivalenceResult, OutputReport
from repro.diagnostics import sample_failing_domain, synthesize_witnesses
from repro.presburger import parse_set


class TestSampleFailingDomain:
    def test_samples_a_member_of_the_set(self):
        text = "{ [i] : 0 <= i < 16 }"
        point, note = sample_failing_domain(text)
        assert note == ""
        assert parse_set(text).contains(point)

    def test_rendered_existentials_round_trip(self):
        # The checker renders div variables as plain `e0` names; the parser
        # treats unknown names as implicitly existential, so sampling works.
        text = "{ [w0] : exists e0 : w0 = 2e0 and 0 <= w0 < 10 }"
        point, note = sample_failing_domain(text)
        assert note == ""
        assert point[0] % 2 == 0

    def test_garbage_text_degrades_gracefully(self):
        point, note = sample_failing_domain("not a set at all")
        assert point is None
        assert "does not parse" in note

    def test_empty_set_degrades_gracefully(self):
        point, note = sample_failing_domain("{ [i] : i > 0 and i < 0 }")
        assert point is None
        assert "empty" in note

    def test_deterministic_per_seed(self):
        text = "{ [i, j] : 0 <= i < 9 and 0 <= j < 9 }"
        assert sample_failing_domain(text, seed=4) == sample_failing_domain(text, seed=4)


class TestSynthesizeWitnesses:
    def test_one_witness_per_failing_output(self):
        result = EquivalenceResult(
            equivalent=False,
            outputs=[
                OutputReport(array="C", equivalent=True),
                OutputReport(
                    array="D", equivalent=False, failing_domain="{ [i] : 0 <= i < 4 }"
                ),
                OutputReport(array="E", equivalent=False),
            ],
        )
        witnesses = synthesize_witnesses(result)
        assert [w.array for w in witnesses] == ["D", "E"]
        assert witnesses[0].witness_point is not None
        assert parse_set("{ [i] : 0 <= i < 4 }").contains(witnesses[0].witness_point)
        assert witnesses[1].witness_point is None
        assert "no mismatch set" in witnesses[1].note

    def test_equivalent_result_yields_no_witnesses(self):
        result = EquivalenceResult(
            equivalent=True, outputs=[OutputReport(array="C", equivalent=True)]
        )
        assert synthesize_witnesses(result) == []
