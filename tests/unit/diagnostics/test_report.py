"""Serialisation round-trips and rendering of the failure-report model."""

from repro.diagnostics import (
    BisectionOutcome,
    FailureReport,
    OutputWitness,
    ReplayResult,
    WitnessCell,
)


def _full_report() -> FailureReport:
    cell = WitnessCell(
        array="C",
        index=(2, 3),
        original_value=7,
        transformed_value=9,
        original_statement="s2",
        transformed_statement="t4",
    )
    replay = ReplayResult(seed=5, diverged=True, divergence_count=4, first_divergence=cell)
    witness = OutputWitness(
        array="C",
        failing_domain="{ [i, j] : 0 <= i < 4 and 0 <= j < 4 }",
        witness_point=(2, 3),
        point_confirmed=True,
        original_path=("C[2, 3]", "s2", "A[2, 3]"),
        transformed_path=("C[2, 3]", "t4", "A[2, 4]"),
    )
    bisection = BisectionOutcome(
        step_index=3, step_name="mutation", step_detail="write-index at t4", judged=3
    )
    return FailureReport(
        equivalent=False,
        confirmed=True,
        outputs=[witness],
        replay=replay,
        bisection=bisection,
        notes=("a note",),
    )


class TestRoundTrips:
    def test_full_report_round_trips(self):
        report = _full_report()
        rebuilt = FailureReport.from_dict(report.to_dict())
        assert rebuilt.to_dict() == report.to_dict()
        assert rebuilt.confirmed is True
        assert rebuilt.outputs[0].witness_point == (2, 3)
        assert rebuilt.replay.first_divergence.index == (2, 3)
        assert rebuilt.bisection.step_index == 3

    def test_json_serialisable(self):
        import json

        payload = json.dumps(_full_report().to_dict(), sort_keys=True)
        assert FailureReport.from_dict(json.loads(payload)).confirmed is True

    def test_minimal_report_round_trips(self):
        report = FailureReport(equivalent=True, confirmed=False)
        rebuilt = FailureReport.from_dict(report.to_dict())
        assert rebuilt.equivalent is True
        assert rebuilt.outputs == []
        assert rebuilt.replay is None and rebuilt.bisection is None

    def test_error_replay_round_trips(self):
        replay = ReplayResult(
            seed=1,
            diverged=True,
            transformed_error="read of undefined element C[9] (at statement t2)",
            transformed_error_statement="t2",
        )
        rebuilt = ReplayResult.from_dict(replay.to_dict())
        assert rebuilt.transformed_error_statement == "t2"
        assert rebuilt.first_divergence is None


class TestRendering:
    def test_format_mentions_the_evidence(self):
        text = _full_report().format()
        assert "witness confirmed" in text
        assert "C[2, 3]" in text
        assert "by s2" in text and "by t4" in text
        assert "mutation" in text
        assert "a note" in text

    def test_equivalent_report_renders_as_nothing_to_diagnose(self):
        assert "nothing to diagnose" in FailureReport(equivalent=True, confirmed=False).format()

    def test_unconfirmed_report_says_so(self):
        report = FailureReport(equivalent=False, confirmed=False)
        assert "no concrete witness" in report.format()

    def test_bisection_describe(self):
        hit = BisectionOutcome(step_index=0, step_name="loop-shift", step_detail="s1", judged=2)
        assert "step 1" in hit.describe()
        assert hit.localized
        miss = BisectionOutcome(step_index=None, detail="no snapshots")
        assert not miss.localized
        assert "inconclusive" in miss.describe()

    def test_witness_cell_describe_undefined_side(self):
        cell = WitnessCell(array="y", index=(0,), original_value=3, original_statement="s9")
        text = cell.describe()
        assert "undefined" in text and "by s9" in text
