"""Pipeline bisection over recorded transformation traces."""

import random

from repro.diagnostics import bisect_trace
from repro.lang import parse_program, program_to_text
from repro.transforms import TransformStep, compose_random_pipeline, extended_probes
from repro.transforms.mutate import perturb_write_index

BASE = """
#define N 10
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i] + 1;
  }
}
"""


def _pipeline_with_mutation(seed=0, steps=3):
    """An equivalence-preserving pipeline followed by one injected mutation."""
    original = parse_program(BASE)
    rng = random.Random(seed)
    transformed, trace = compose_random_pipeline(
        original, rng, steps=steps, probes=extended_probes()
    )
    labels = [a.label for a in transformed.assignments() if a.label]
    mutated, mutation = perturb_write_index(transformed, labels[-1])
    trace = list(trace) + [
        TransformStep(
            "mutation", mutation.description, snapshot_source=program_to_text(mutated)
        )
    ]
    return original, trace


class TestBisectTrace:
    def test_names_the_injected_mutation(self):
        original, trace = _pipeline_with_mutation()
        assert len(trace) >= 2  # at least one preserving step + the mutation
        outcome = bisect_trace(original, trace)
        assert outcome.localized
        assert outcome.step_index == len(trace) - 1
        assert outcome.step_name == "mutation"

    def test_logarithmic_judge_count(self):
        original, trace = _pipeline_with_mutation(seed=1, steps=5)
        outcome = bisect_trace(original, trace)
        assert outcome.localized
        # Bisection pays O(log n) judge evaluations, never one per step.
        assert outcome.judged <= len(trace).bit_length() + 1

    def test_compose_random_pipeline_records_snapshots(self):
        original = parse_program(BASE)
        _, trace = compose_random_pipeline(
            original, random.Random(0), steps=3, probes=extended_probes()
        )
        assert trace
        for step in trace:
            assert step.snapshot_source
            parse_program(step.snapshot_source)  # snapshots re-parse

    def test_equivalent_trace_is_inconclusive(self):
        original = parse_program(BASE)
        transformed, trace = compose_random_pipeline(
            original, random.Random(2), steps=3, probes=extended_probes()
        )
        outcome = bisect_trace(original, trace)
        assert outcome is not None
        assert not outcome.localized
        assert "cannot distinguish" in outcome.detail

    def test_empty_trace_returns_none(self):
        assert bisect_trace(parse_program(BASE), []) is None

    def test_trace_without_snapshots_is_inconclusive(self):
        original, trace = _pipeline_with_mutation()
        stripped = [TransformStep(step.name, step.detail) for step in trace]
        outcome = bisect_trace(original, stripped)
        assert not outcome.localized
        assert "no replayable snapshots" in outcome.detail

    def test_partial_snapshots_still_localize(self):
        original, trace = _pipeline_with_mutation(seed=3, steps=4)
        # Drop the snapshots of the preserving steps; the mutation keeps its
        # own, so bisection can still land on it.
        for step in trace[:-1]:
            step.snapshot_source = None
        outcome = bisect_trace(original, trace)
        assert outcome.localized
        assert outcome.step_name == "mutation"

    def test_custom_judge_is_honoured(self):
        original, trace = _pipeline_with_mutation(seed=4, steps=2)
        calls = []

        def never_broken(_program):
            calls.append(1)
            return False

        outcome = bisect_trace(original, trace, judge=never_broken)
        assert not outcome.localized
        assert calls  # the custom judge actually ran

    def test_step_snapshot_round_trips_through_dict(self):
        step = TransformStep("loop-shift", "loop of s1 by 1", snapshot_source="void f() {}")
        rebuilt = TransformStep.from_dict(step.to_dict())
        assert rebuilt.snapshot_source == step.snapshot_source
        legacy = TransformStep.from_dict({"name": "x", "detail": "y"})
        assert legacy.snapshot_source is None
