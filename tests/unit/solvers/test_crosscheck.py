"""Differential cross-check backend: agreement counting, disagreement alarm,
serialized-query replay, and the executor's handling of the alarm."""

import json

import pytest

from repro.presburger import parse_set
from repro.service import VerificationJob
from repro.service.executor import JobStatus, execute_job
from repro.solvers import (
    BackendDisagreement,
    CrossCheckBackend,
    OmegaBackend,
    SmtLibBackend,
    replay_query,
    serialize_query,
    use_backend,
)


class LyingBackend(OmegaBackend):
    """An intentionally unsound backend: inverts every subset verdict."""

    name = "lying"

    def is_subset(self, a, b):
        return not super().is_subset(a, b)


class TestAgreement:
    def test_counters_accumulate_across_children(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        big = parse_set("{ [i] : 0 <= i < 8 }")
        backend = CrossCheckBackend(OmegaBackend(), SmtLibBackend("builtin"))
        assert backend.is_subset(small.conjuncts, big.conjuncts)
        assert backend.is_equal(small.conjuncts, small.conjuncts)
        counts = backend.query_counts
        assert counts["crosscheck.agreements"] == 2
        assert counts["omega.is_subset"] == 1
        assert counts["smtlib.is_subset"] == 1
        assert counts["omega.is_equal"] == 1
        assert counts["smtlib.is_equal"] == 1
        assert "crosscheck.disagreements" not in counts

    def test_sample_point_checked_by_membership(self):
        # The two backends may return different witnesses of the same set;
        # the secondary only verifies membership of the primary's point.
        stripes = parse_set("{ [i] : exists a : i = 3a and 0 <= i < 12 }")
        backend = CrossCheckBackend(OmegaBackend(), SmtLibBackend("builtin"))
        point = backend.sample_point(stripes)
        assert point[0] % 3 == 0
        assert backend.query_counts["crosscheck.agreements"] == 1

    def test_routing_through_set_api(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        with use_backend("crosscheck", "builtin") as backend:
            assert small.is_equal(small)
        assert backend.query_counts["crosscheck.agreements"] == 1


class TestDisagreement:
    def test_divergence_raises_with_replayable_query(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        big = parse_set("{ [i] : 0 <= i < 8 }")
        backend = CrossCheckBackend(OmegaBackend(), LyingBackend())
        with pytest.raises(BackendDisagreement) as info:
            backend.is_subset(small.conjuncts, big.conjuncts)
        error = info.value
        assert error.primary == "omega"
        assert error.secondary == "lying"
        assert error.primary_result is True
        assert error.secondary_result is False
        assert backend.query_counts["crosscheck.disagreements"] == 1

        # The payload is JSON-serialisable and replays the exact query: a
        # sound backend answers True, the lying one answers False — offline.
        payload = json.loads(json.dumps(error.to_dict()))
        assert payload["query"]["kind"] == "is_subset"
        assert replay_query(payload["query"], OmegaBackend()) is True
        assert replay_query(payload["query"], SmtLibBackend("builtin")) is True
        assert replay_query(payload["query"], LyingBackend()) is False

    def test_disagreement_is_not_an_exception(self):
        # Like JobTimeoutError: it must pierce `except Exception` recovery.
        assert not issubclass(BackendDisagreement, Exception)
        assert issubclass(BackendDisagreement, BaseException)

    def test_replay_all_kinds(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        other = parse_set("{ [i] : 10 <= i < 12 }")
        backend = OmegaBackend()
        feasible = serialize_query("is_feasible", (small.conjuncts[0],))
        assert replay_query(feasible, backend) is True
        disjoint = serialize_query("is_disjoint", small.conjuncts, other.conjuncts)
        assert replay_query(disjoint, backend) is True
        equal = serialize_query("is_equal", small.conjuncts, small.conjuncts)
        assert replay_query(equal, backend) is True
        sample = serialize_query("sample_point", small.conjuncts, seed=1, limit=64)
        assert replay_query(sample, backend) in {(i,) for i in range(4)}

    def test_replay_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            replay_query({"kind": "is_convex", "a": []}, OmegaBackend())


class TestExecutorHandling:
    def test_disagreement_yields_error_result_with_payload(self):
        # The alarm must surface as a structured ERROR row, not crash the
        # batch and not be swallowed by the generic recovery path.
        small = parse_set("{ [i] : 0 <= i < 4 }")
        big = parse_set("{ [i] : 0 <= i < 8 }")
        backend = CrossCheckBackend(OmegaBackend(), LyingBackend())
        job = VerificationJob(
            name="divergent",
            original_source="f(int A[]) { int k; for(k=0;k<4;k++) s1: A[k] = k; }",
            transformed_source="f(int A[]) { int k; for(k=0;k<4;k++) s1: A[k] = k; }",
        )

        def run():
            return backend.is_subset(small.conjuncts, big.conjuncts)

        result = execute_job(job, run=run)
        assert result.status == JobStatus.ERROR
        assert "BackendDisagreement" in result.error
        payload = result.metadata["backend_disagreement"]
        assert payload["primary"] == "omega"
        assert payload["secondary"] == "lying"
        assert replay_query(payload["query"], OmegaBackend()) is True
