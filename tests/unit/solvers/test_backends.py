"""Backend protocol, selection, routing and options/stats plumbing tests."""

import pytest

from repro.checker.result import CheckStats
from repro.presburger import parse_set
from repro.presburger import hooks
from repro.solvers import (
    BACKEND_NAMES,
    OmegaBackend,
    SmtLibBackend,
    available_backends,
    get_backend,
    use_backend,
)
from repro.verifier.options import CheckOptions


class TestSelection:
    def test_get_backend_names(self):
        assert get_backend("omega").name == "omega"
        assert get_backend("smtlib", "builtin").name == "smtlib"
        crosscheck = get_backend("crosscheck", "builtin")
        assert crosscheck.name == "crosscheck"
        assert crosscheck.primary.name == "omega"
        assert crosscheck.secondary.name == "smtlib"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("simplex")

    def test_available_backends_always_include_stdlib_ones(self):
        names = available_backends()
        for name in ("omega", "smtlib", "crosscheck"):
            assert name in names
        assert set(names) <= set(BACKEND_NAMES)


class TestOmegaBackend:
    def test_decisions_match_set_api(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        big = parse_set("{ [i] : 0 <= i < 8 }")
        other = parse_set("{ [i] : 10 <= i < 12 }")
        backend = OmegaBackend()
        assert backend.is_subset(small.conjuncts, big.conjuncts)
        assert not backend.is_subset(big.conjuncts, small.conjuncts)
        assert backend.is_equal(small.conjuncts, small.conjuncts)
        assert backend.is_disjoint(small.conjuncts, other.conjuncts)
        assert backend.is_feasible(small.conjuncts[0])
        assert backend.sample_point(small) in {(i,) for i in range(4)}

    def test_query_counters(self):
        backend = OmegaBackend()
        small = parse_set("{ [i] : 0 <= i < 4 }")
        backend.is_subset(small.conjuncts, small.conjuncts)
        backend.is_subset(small.conjuncts, small.conjuncts)
        backend.is_equal(small.conjuncts, small.conjuncts)
        assert backend.query_counts == {"omega.is_subset": 2, "omega.is_equal": 1}


class TestRouting:
    def test_omega_installs_nothing(self):
        # The default backend IS the inline path: nothing on the hook, no
        # counters, byte-identical behaviour.
        with use_backend("omega") as backend:
            assert backend is None
            assert hooks.active_backend() is None

    def test_smtlib_routes_set_queries(self):
        small = parse_set("{ [i] : 0 <= i < 4 }")
        big = parse_set("{ [i] : 0 <= i < 8 }")
        with use_backend("smtlib", "builtin") as backend:
            assert hooks.active_backend() is backend
            assert small.is_subset(big)
            assert small.contains([2])
        assert hooks.active_backend() is None
        assert backend.query_counts["smtlib.is_subset"] == 1
        assert backend.query_counts["smtlib.is_feasible"] == 1

    def test_backend_reentry_is_suspended(self):
        # sample_point's fallback re-enters the Set API; the hook must be
        # suspended there or a routing backend would recurse into itself.
        small = parse_set("{ [i] : 0 <= i < 4 }")
        with use_backend("smtlib", "builtin"):
            point = small.sample_point()
        assert point in {(i,) for i in range(4)}


class TestOptionsPlumbing:
    def test_backend_validated(self):
        with pytest.raises(ValueError):
            CheckOptions(backend="simplex")

    def test_backend_in_fingerprint(self):
        default = CheckOptions()
        assert default.fingerprint() != CheckOptions(backend="smtlib").fingerprint()
        # ... but the concrete solver binary is excluded, like timeout: any
        # sound solver must compute the same verdict.
        assert (
            CheckOptions(backend="smtlib", smt_solver="z3").fingerprint()
            == CheckOptions(backend="smtlib", smt_solver="builtin").fingerprint()
        )

    def test_roundtrip(self):
        options = CheckOptions(backend="crosscheck", smt_solver="builtin")
        again = CheckOptions.from_dict(options.to_dict())
        assert again == options

    def test_from_dict_tolerates_pre_backend_payloads(self):
        options = CheckOptions.from_dict({"method": "basic"})
        assert options.backend == "omega"
        assert options.smt_solver is None


class TestCheckStatsPlumbing:
    def test_default_backend_field(self):
        stats = CheckStats()
        assert stats.backend == "omega"
        assert stats.solver_queries == {}

    def test_roundtrip(self):
        stats = CheckStats(backend="crosscheck", solver_queries={"omega.is_equal": 3})
        again = CheckStats.from_dict(stats.as_dict())
        assert again.backend == "crosscheck"
        assert again.solver_queries == {"omega.is_equal": 3}

    def test_from_dict_tolerates_pre_backend_payloads(self):
        stats = CheckStats.from_dict({"elapsed_seconds": 1.0})
        assert stats.backend == "omega"
        assert stats.solver_queries == {}
