"""Unit tests for the SMT-LIB2 emission layer of :mod:`repro.solvers.smtlib`."""

import pytest

from repro.presburger import parse_set
from repro.presburger.conjunct import Conjunct
from repro.solvers.smtlib import (
    conjunct_formula,
    disjoint_scripts,
    feasibility_script,
    subset_scripts,
)


def conjunct_of(text):
    (conjunct,) = parse_set(text).conjuncts
    return conjunct


class TestConjunctFormula:
    def test_simple_bounds(self):
        body, divs = conjunct_formula(conjunct_of("{ [i] : 0 <= i < 8 }"), ["x0"])
        assert divs == []
        assert "x0" in body
        assert body.startswith("(and ") or body.startswith("(>= ")

    def test_negative_literals_are_prefix_form(self):
        # SMT-LIB has no -5 literal: negatives must render as (- 5).
        body, _ = conjunct_formula(conjunct_of("{ [i] : i <= -5 }"), ["x0"])
        assert "(- 5)" in body
        assert "-5" not in body.replace("(- 5)", "")

    def test_divisibility_becomes_witness_column(self):
        conjunct = conjunct_of("{ [i] : exists a : i = 2a and 0 <= i < 8 }")
        assert conjunct.n_div == 1
        body, divs = conjunct_formula(conjunct, ["x0"])
        assert divs == ["d0"]
        assert "d0" in body

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            conjunct_formula(conjunct_of("{ [i, j] : i = j }"), ["x0"])

    def test_empty_conjunct_is_true(self):
        body, divs = conjunct_formula(Conjunct(1, 0), ["x0"])
        assert body == "true"
        assert divs == []


class TestScripts:
    def test_feasibility_script_shape(self):
        script = feasibility_script(conjunct_of("{ [i] : 0 <= i < 8 }"))
        assert "(set-logic LIA)" in script
        assert "(declare-const x0 Int)" in script
        assert script.rstrip().endswith("(check-sat)")

    def test_feasibility_script_model_extraction(self):
        script = feasibility_script(conjunct_of("{ [i] : 0 <= i < 8 }"), get_model=True)
        assert "(set-option :produce-models true)" in script
        assert "(get-value (x0))" in script

    def test_commands_false_omits_check_sat(self):
        script = feasibility_script(conjunct_of("{ [i] : 0 <= i < 8 }"), commands=False)
        assert "(check-sat)" not in script
        assert "(assert " in script

    def test_subset_one_script_per_left_conjunct(self):
        a = parse_set("{ [i] : 0 <= i < 4 ; [i] : 6 <= i < 8 }").conjuncts
        b = parse_set("{ [i] : 0 <= i < 10 }").conjuncts
        scripts = subset_scripts(a, b)
        assert len(scripts) == len(a)
        # Subset is an UNSAT check of Ai /\ not(exists B1) /\ ...
        assert all("(assert (not " in s for s in scripts)

    def test_subset_negated_conjunct_quantifies_divs(self):
        a = parse_set("{ [i] : 0 <= i < 8 }").conjuncts
        b = parse_set("{ [i] : exists e : i = 2e and 0 <= i < 8 }").conjuncts
        (script,) = subset_scripts(a, b)
        # The negated right-hand conjunct must bind its witness with exists,
        # not leak it as a free constant (which would flip the semantics).
        assert "(exists ((e0 Int))" in script
        assert "(declare-const e0 Int)" not in script

    def test_disjoint_one_script_per_pair(self):
        a = parse_set("{ [i] : 0 <= i < 4 ; [i] : 6 <= i < 8 }").conjuncts
        b = parse_set("{ [i] : 4 <= i < 6 ; [i] : 8 <= i < 9 }").conjuncts
        scripts = disjoint_scripts(a, b)
        assert len(scripts) == len(a) * len(b)

    def test_disjoint_keeps_witnesses_apart(self):
        # Both sides carry a divisibility witness; the emitted script must
        # give them distinct prefixes (d* vs e*) so they stay independent.
        a = parse_set("{ [i] : exists k : i = 2k and 0 <= i < 8 }").conjuncts
        b = parse_set("{ [i] : exists k : i = 2k + 1 and 0 <= i < 8 }").conjuncts
        (script,) = disjoint_scripts(a, b)
        assert "(declare-const d0 Int)" in script
        assert "(declare-const e0 Int)" in script
