"""Differential property sweep: the omega core and the SMT-LIB2 path must
agree on every decision query, over a corpus of hand-picked hard cases and
over the full registered kernel workload.

The hard cases deliberately include the Fourier–Motzkin dark-shadow and
splinter territory — strided (divisibility-constrained) sets with
non-unit coefficients, where naive real-shadow reasoning over- or
under-approximates and an integer-exactness bug in either backend would
surface as a verdict flip.
"""

import shutil

import pytest

from repro.presburger import parse_set
from repro.solvers import CrossCheckBackend, OmegaBackend, SmtLibBackend
from repro.verifier import Verifier
from repro.verifier.options import CheckOptions
from repro.workloads import SMALL_KERNEL_PARAMS, kernel_names, kernel_pair

# Dense bounded sets plus FM hard cases: strides, dark-shadow style gaps,
# multi-conjunct unions, multi-dimensional couplings, empty sets.
CORPUS = [
    "{ [i] : 0 <= i < 8 }",
    "{ [i] : 0 <= i < 4 ; [i] : 6 <= i < 10 }",
    "{ [i] : exists a : i = 2a and 0 <= i < 16 }",
    "{ [i] : exists a : i = 2a + 1 and 0 <= i < 16 }",
    "{ [i] : exists a : i = 3a and 0 <= i < 16 }",
    "{ [i] : exists a : i = 6a and 0 <= i < 16 }",
    # Dark shadow: 3a <= i <= 3a + 1 leaves every third value uncovered; the
    # real shadow of the projection is the full interval.
    "{ [i] : exists a : 3a <= i and i <= 3a + 1 and 0 <= i < 12 }",
    # Splinter-style tight stride: only exact integer reasoning keeps the
    # single residue class.
    "{ [i] : exists a : 2i = 4a + 2 and 0 <= i < 12 }",
    "{ [i, j] : 0 <= i < 4 and 0 <= j < 4 and i <= j }",
    "{ [i, j] : exists a : i + j = 2a and 0 <= i < 4 and 0 <= j < 4 }",
    "{ [i] : 0 <= i and i < 0 }",
    "{ [i] : exists a : i = 2a and exists b : i = 3b and 0 <= i < 18 }",
]


def backends():
    return OmegaBackend(), SmtLibBackend("builtin")


def pairs(dimension):
    sets = [parse_set(text) for text in CORPUS]
    return [
        (a, b)
        for a in sets
        for b in sets
        if a.arity == dimension and b.arity == dimension
    ]


class TestCorpusSweep:
    @pytest.mark.parametrize("dimension", [1, 2])
    def test_binary_queries_agree(self, dimension):
        omega, smt = backends()
        for a, b in pairs(dimension):
            for kind in ("is_subset", "is_equal", "is_disjoint"):
                first = getattr(omega, kind)(a.conjuncts, b.conjuncts)
                second = getattr(smt, kind)(a.conjuncts, b.conjuncts)
                assert first == second, (kind, str(a), str(b))

    def test_feasibility_agrees(self):
        omega, smt = backends()
        for text in CORPUS:
            for conjunct in parse_set(text).conjuncts:
                assert omega.is_feasible(conjunct) == smt.is_feasible(conjunct), text

    def test_sample_points_are_members(self):
        omega, smt = backends()
        for text in CORPUS:
            integer_set = parse_set(text)
            if integer_set.is_empty():
                continue
            for backend in (omega, smt):
                point = backend.sample_point(integer_set)
                assert integer_set.contains(list(point)), (text, backend.name, point)

    def test_crosscheck_sweep_has_no_disagreements(self):
        backend = CrossCheckBackend(*backends())
        for a, b in pairs(1):
            backend.is_subset(a.conjuncts, b.conjuncts)
            backend.is_equal(a.conjuncts, b.conjuncts)
            backend.is_disjoint(a.conjuncts, b.conjuncts)
        counts = backend.query_counts
        assert counts["crosscheck.agreements"] > 0
        assert "crosscheck.disagreements" not in counts


class TestKernelSweep:
    """Verdict identity end to end: every registered workload kernel checks
    to the same verdict under omega and under the SMT path."""

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_verdicts_identical(self, name):
        pair = kernel_pair(name, **SMALL_KERNEL_PARAMS.get(name, {}))
        omega_result = Verifier(options=CheckOptions()).check(
            pair.original, pair.transformed
        )
        smt_result = Verifier(
            options=CheckOptions(backend="smtlib", smt_solver="builtin")
        ).check(pair.original, pair.transformed)
        assert omega_result.equivalent == smt_result.equivalent
        assert omega_result.equivalent  # the registered pairs are equivalent
        assert smt_result.stats.backend == "smtlib"
        assert sum(smt_result.stats.solver_queries.values()) > 0
        assert omega_result.stats.backend == "omega"
        assert omega_result.stats.solver_queries == {}

    def test_crosscheck_on_buggy_pair_still_agrees(self):
        # A non-equivalent pair: both backends must agree on the *negative*
        # verdict too (divergence would raise BackendDisagreement here).
        from repro.workloads import fig1_original, fig1_ver3_erroneous

        result = Verifier(
            options=CheckOptions(backend="crosscheck", smt_solver="builtin")
        ).check(fig1_original(), fig1_ver3_erroneous())
        assert not result.equivalent
        assert result.stats.backend == "crosscheck"
        counts = result.stats.solver_queries
        assert counts.get("crosscheck.agreements", 0) > 0
        assert counts.get("crosscheck.disagreements", 0) == 0


@pytest.mark.skipif(shutil.which("z3") is None, reason="z3 binary not on PATH")
class TestRealZ3Binary:
    def test_corpus_agrees_through_z3(self):
        omega, z3_backend = OmegaBackend(), SmtLibBackend("z3")
        for a, b in pairs(1)[:20]:
            assert omega.is_subset(a.conjuncts, b.conjuncts) == z3_backend.is_subset(
                a.conjuncts, b.conjuncts
            )


@pytest.mark.skipif(shutil.which("cvc5") is None, reason="cvc5 binary not on PATH")
class TestRealCvc5Binary:
    def test_corpus_agrees_through_cvc5(self):
        omega, cvc5_backend = OmegaBackend(), SmtLibBackend("cvc5 --lang smt2")
        for a, b in pairs(1)[:20]:
            assert omega.is_subset(a.conjuncts, b.conjuncts) == cvc5_backend.is_subset(
                a.conjuncts, b.conjuncts
            )
