"""Unit tests for the bundled stdlib SMT-LIB2 interpreter (``builtin`` solver)."""

import os
import subprocess
import sys

import pytest

from repro.presburger import parse_set
from repro.solvers import mini_smt
from repro.solvers.smtlib import SmtLibBackend, feasibility_script, subset_scripts


class TestParser:
    def test_parse_sexprs_nesting(self):
        forms = mini_smt.parse_sexprs("(a (b 1) 2) (c)")
        assert forms == [["a", ["b", "1"], "2"], ["c"]]

    def test_comments_are_stripped(self):
        forms = mini_smt.parse_sexprs("(a 1) ; trailing comment (not a form)\n(b)")
        assert forms == [["a", "1"], ["b"]]

    def test_unbalanced_parens_rejected(self):
        from repro.solvers.base import SolverError

        with pytest.raises(SolverError):
            mini_smt.parse_sexprs("(a (b)")


class TestSolveText:
    def test_sat_with_model(self):
        result = mini_smt.solve_text(
            "(set-logic LIA)\n"
            "(declare-const x Int)\n"
            "(assert (and (>= x 3) (>= 5 x)))\n"
            "(check-sat)\n"
            "(get-value (x))\n"
        )
        assert result.status == "sat"
        assert result.values is not None
        (value,) = result.values
        assert 3 <= value <= 5

    def test_unsat(self):
        result = mini_smt.solve_text(
            "(declare-const x Int)\n"
            "(assert (>= x 3))\n(assert (>= 2 x))\n(check-sat)\n"
        )
        assert result.status == "unsat"

    def test_exists_divisibility(self):
        # x even and x odd is unsat; x even alone is sat.
        even = "(exists ((k Int)) (= x (* 2 k)))"
        odd = "(exists ((k Int)) (= x (+ (* 2 k) 1)))"
        base = "(declare-const x Int)\n(assert (and (>= x 0) (>= 10 x)))\n"
        assert (
            mini_smt.solve_text(base + f"(assert {even})\n(check-sat)\n").status == "sat"
        )
        assert (
            mini_smt.solve_text(
                base + f"(assert {even})\n(assert {odd})\n(check-sat)\n"
            ).status
            == "unsat"
        )

    def test_negation_of_quantified_body(self):
        # 0 <= x < 8 and not(exists k: x = 2k): the odd numbers — sat.
        script = (
            "(declare-const x Int)\n"
            "(assert (and (>= x 0) (>= 7 x)))\n"
            "(assert (not (exists ((k Int)) (= x (* 2 k)))))\n"
            "(check-sat)\n(get-value (x))\n"
        )
        result = mini_smt.solve_text(script)
        assert result.status == "sat"
        assert result.values[0] % 2 == 1

    def test_emitted_scripts_round_trip(self):
        conjunct = parse_set("{ [i] : exists a : i = 3a and 0 <= i < 9 }").conjuncts[0]
        assert mini_smt.solve_text(feasibility_script(conjunct)).status == "sat"
        a = parse_set("{ [i] : exists a : i = 6a and 0 <= i < 12 }").conjuncts
        b = parse_set("{ [i] : exists a : i = 3a and 0 <= i < 12 }").conjuncts
        (forward,) = subset_scripts(a, b)
        (backward,) = subset_scripts(b, a)
        assert mini_smt.solve_text(forward).status == "unsat"  # 6Z inside 3Z
        assert mini_smt.solve_text(backward).status == "sat"  # 3 is a counterexample


class TestSubprocessPath:
    """The builtin interpreter doubles as a real solver *binary* for tests.

    Running ``python -m repro.solvers.mini_smt`` through the subprocess path
    of :class:`SmtLibBackend` exercises exactly the plumbing an external z3
    or cvc5 would use — tempfile handoff, stdout parsing, model extraction —
    without needing either installed.
    """

    @pytest.fixture()
    def solver_cmd(self, monkeypatch):
        src_root = os.path.abspath(
            os.path.join(os.path.dirname(mini_smt.__file__), "..", "..")
        )
        existing = os.environ.get("PYTHONPATH")
        monkeypatch.setenv(
            "PYTHONPATH", src_root + (os.pathsep + existing if existing else "")
        )
        return f"{sys.executable} -m repro.solvers.mini_smt"

    def test_cli_prints_solver_style_output(self, solver_cmd, tmp_path):
        script = tmp_path / "probe.smt2"
        script.write_text(
            "(declare-const x Int)\n(assert (= x 4))\n(check-sat)\n(get-value (x))\n"
        )
        completed = subprocess.run(
            solver_cmd.split() + [str(script)], capture_output=True, text=True
        )
        assert completed.returncode == 0
        lines = completed.stdout.splitlines()
        assert lines[0] == "sat"
        assert "((x 4))" in lines[1]

    def test_backend_through_subprocess(self, solver_cmd):
        backend = SmtLibBackend(solver_cmd)
        a = parse_set("{ [i] : 0 <= i < 4 }").conjuncts
        b = parse_set("{ [i] : 0 <= i < 8 }").conjuncts
        assert backend.is_subset(a, b)
        assert not backend.is_subset(b, a)
        point = backend.sample_point(parse_set("{ [i, j] : i = 2 and j = -3 }"))
        assert point == (2, -3)
