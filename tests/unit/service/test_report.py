"""Unit tests: report aggregation, JSONL round-trip, percentiles."""

from repro.service import (
    CacheStats,
    JobResult,
    JobStatus,
    aggregate_results,
    format_summary,
    read_report,
    write_report,
)
from repro.service.report import percentile, scenario_summary


def make_results():
    return [
        JobResult("a", JobStatus.OK, equivalent=True, expected_equivalent=True,
                  elapsed_seconds=0.1),
        JobResult("b", JobStatus.OK, equivalent=False, expected_equivalent=False,
                  elapsed_seconds=0.3, cache_hit=True),
        JobResult("c", JobStatus.OK, equivalent=False, expected_equivalent=True,
                  elapsed_seconds=0.2),  # mismatch
        JobResult("d", JobStatus.ERROR, error="boom", elapsed_seconds=0.05),
        JobResult("e", JobStatus.TIMEOUT, error="budget", elapsed_seconds=1.0),
    ]


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([4.0], 0.99) == 4.0

    def test_median_and_max(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 1.0) == 5.0


class TestAggregate:
    def test_counts_and_mismatches(self):
        summary = aggregate_results(make_results())
        assert summary["total_jobs"] == 5
        assert summary["by_status"] == {"ok": 3, "error": 1, "timeout": 1}
        assert summary["equivalent"] == 1
        assert summary["not_equivalent"] == 2
        assert summary["cache_hits"] == 1
        assert summary["expectation_mismatches"] == ["c"]
        assert summary["failed_jobs"] == ["d", "e"]
        assert summary["timing"]["max_seconds"] == 1.0
        assert abs(summary["timing"]["total_seconds"] - 1.65) < 1e-9

    def test_cache_stats_embedded(self):
        stats = CacheStats(hits=3, misses=1)
        summary = aggregate_results(make_results(), stats)
        assert summary["cache"]["hits"] == 3
        assert summary["cache"]["hit_rate"] == 0.75

    def test_opcache_delta_enriches_the_block(self):
        from repro.presburger.opcache import OpCacheStats

        delta = OpCacheStats(
            hits=10,
            misses=4,
            evictions=2,
            intern_hits=30,
            intern_misses=7,
            per_op={"compose": (6, 3), "feasible": (4, 1)},
        )
        summary = aggregate_results(make_results(), opcache_stats=delta)
        block = summary["opcache"]
        assert block["evictions"] == 2
        assert block["intern_misses"] == 7
        assert block["per_op"] == {
            "compose": {"hits": 6, "misses": 3},
            "feasible": {"hits": 4, "misses": 1},
        }
        rendered = format_summary(summary)
        assert "2 eviction(s)" in rendered
        assert "per-op" in rendered
        assert "compose 6/9" in rendered

    def test_opcache_block_without_delta_keeps_legacy_shape(self):
        summary = aggregate_results(make_results())
        assert "per_op" not in summary["opcache"]
        assert "evictions" not in summary["opcache"]
        assert "opcache" in format_summary(summary)

    def test_empty_batch(self):
        summary = aggregate_results([])
        assert summary["total_jobs"] == 0
        assert summary["cache_hit_rate"] == 0.0
        assert summary["timing"]["mean_seconds"] == 0.0


class TestReportFile:
    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "report.jsonl")
        results = make_results()
        summary = write_report(path, results, CacheStats(hits=1, misses=4))
        restored, restored_summary = read_report(path)
        assert [r.name for r in restored] == [r.name for r in results]
        assert [r.status for r in restored] == [r.status for r in results]
        assert restored_summary is not None
        assert restored_summary["total_jobs"] == summary["total_jobs"]
        assert restored_summary["expectation_mismatches"] == ["c"]

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "report.jsonl")
        write_report(path, make_results())
        lines = [line for line in open(path) if line.strip()]
        assert len(lines) == len(make_results()) + 1  # + summary row

    def test_format_summary_mentions_problems(self):
        text = format_summary(aggregate_results(make_results()))
        assert "MISMATCHES" in text and "c" in text
        assert "failed jobs" in text and "d" in text
        assert "hit rate" in text


def _scenario_result(name, equivalent, expected_label, oracle_label, status=JobStatus.OK):
    return JobResult(
        name,
        status,
        equivalent=equivalent if status == JobStatus.OK else None,
        expected_equivalent=expected_label == "EQUIVALENT",
        metadata={
            "source": "scenario",
            "expected_label": expected_label,
            "oracle": {"label": oracle_label, "trials": 3, "witness_seed": None, "detail": ""},
        },
    )


class TestScenarioSummary:
    def test_absent_without_labels(self):
        assert scenario_summary(make_results()) is None
        assert "scenarios" not in aggregate_results(make_results())

    def test_confusion_matrix_counts(self):
        results = [
            _scenario_result("eq-ok", True, "EQUIVALENT", "EQUIVALENT"),
            _scenario_result("eq-unproven", False, "EQUIVALENT", "EQUIVALENT"),
            _scenario_result("bug-caught", False, "NOT_EQUIVALENT", "NOT_EQUIVALENT"),
            _scenario_result("bug-error", None, "NOT_EQUIVALENT", "NOT_EQUIVALENT",
                             status=JobStatus.ERROR),
        ]
        block = scenario_summary(results)
        assert block["labelled"] == 4
        assert block["confusion"]["expected_equivalent"] == {
            "checker_equivalent": 1, "checker_not_equivalent": 1, "not_completed": 0,
        }
        assert block["confusion"]["expected_not_equivalent"] == {
            "checker_equivalent": 0, "checker_not_equivalent": 1, "not_completed": 1,
        }
        assert block["oracle"] == {
            "equivalent": 2, "not_equivalent": 2, "unknown": 0, "missing": 0,
        }
        assert block["incompleteness"] == ["eq-unproven"]
        assert block["soundness_errors"] == []
        assert block["label_disputes"] == []

    def test_soundness_disagreement_is_flagged(self):
        results = [_scenario_result("bad", True, "NOT_EQUIVALENT", "NOT_EQUIVALENT")]
        block = scenario_summary(results)
        assert block["soundness_errors"] == ["bad"]
        text = format_summary(aggregate_results(results))
        assert "SOUNDNESS" in text and "bad" in text

    def test_label_dispute_is_flagged(self):
        results = [_scenario_result("lie", False, "EQUIVALENT", "NOT_EQUIVALENT")]
        block = scenario_summary(results)
        assert block["label_disputes"] == ["lie"]
        assert block["soundness_errors"] == []
        text = format_summary(aggregate_results(results))
        assert "LABEL BUGS" in text and "lie" in text

    def test_unknown_oracle_never_disputes(self):
        results = [_scenario_result("shrug", True, "EQUIVALENT", "UNKNOWN")]
        block = scenario_summary(results)
        assert block["oracle"]["unknown"] == 1
        assert block["label_disputes"] == []
        assert block["soundness_errors"] == []

    def test_format_summary_renders_matrix(self):
        results = [
            _scenario_result("eq", True, "EQUIVALENT", "EQUIVALENT"),
            _scenario_result("bug", False, "NOT_EQUIVALENT", "NOT_EQUIVALENT"),
        ]
        text = format_summary(aggregate_results(results))
        assert "1 proven" in text and "1 caught" in text
        assert "1 agree-equivalent" in text and "1 distinguished" in text

    def test_summary_row_serialises(self, tmp_path):
        results = [_scenario_result("eq", True, "EQUIVALENT", "EQUIVALENT")]
        path = str(tmp_path / "report.jsonl")
        write_report(path, results)
        _, summary = read_report(path)
        assert summary["scenarios"]["labelled"] == 1
