"""Regression tests: per-job timeouts must fire off the main thread.

The historical executor enforced budgets with ``SIGALRM`` only, which is
POSIX- and main-thread-only — a latent portability bug that became load-
bearing with the verification server, whose checks always run on worker
threads.  :func:`repro.service.call_with_timeout` now dispatches to a
signal-free watchdog (``PyThreadState_SetAsyncExc``) whenever ``SIGALRM``
is unavailable, so these tests drive every path from a non-main thread.

The watchdog delivers between Python bytecodes (the same granularity as
the alarm), so the stand-in workloads are pure-Python busy loops — a
blocking C call like ``time.sleep`` is not interruptible on this path and
is exactly what the real checker never does.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    BatchExecutor,
    JobStatus,
    JobTimeoutError,
    VerificationJob,
    call_with_timeout,
    execute_job,
)

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""


def busy_loop(seconds: float = 30.0):
    """Pure-Python CPU spin: interruptible at every bytecode boundary."""
    deadline = time.monotonic() + seconds
    total = 0
    while time.monotonic() < deadline:
        total += 1
    return total


def in_thread(fn):
    """Run *fn* on a fresh non-main thread; re-raise whatever it raised."""
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(fn).result(timeout=30)


def make_job(timeout=None):
    return VerificationJob(
        name="t",
        original_source=ORIGINAL,
        transformed_source=ORIGINAL,
        timeout=timeout,
    )


class TestCallWithTimeout:
    def test_no_budget_is_a_plain_call(self):
        assert call_with_timeout(lambda: 42, None) == 42
        assert call_with_timeout(lambda: 42, 0) == 42

    def test_fires_from_non_main_thread(self):
        def scenario():
            assert threading.current_thread() is not threading.main_thread()
            started = time.monotonic()
            with pytest.raises(JobTimeoutError):
                call_with_timeout(busy_loop, 0.2)
            return time.monotonic() - started

        elapsed = in_thread(scenario)
        assert elapsed < 10  # fired from the watchdog, not the 30 s loop

    def test_fast_function_returns_value_off_main_thread(self):
        assert in_thread(lambda: call_with_timeout(lambda: "done", 5.0)) == "done"

    def test_no_pending_exception_leaks_after_completion(self):
        """A budget that expires just as (or after) the call completes must
        not leave an async exception pending in the worker thread."""

        def scenario():
            # Tight budget, instant function: the timer may or may not fire
            # in the cleanup window; either way the value must survive and
            # later work on the same thread must be undisturbed.
            for _ in range(20):
                assert call_with_timeout(lambda: "v", 0.001) == "v"
            time.sleep(0.05)  # let any stale timer fire
            return call_with_timeout(lambda: "still alive", 5.0)

        assert in_thread(scenario) == "still alive"

    def test_budgets_are_independent_across_threads(self):
        """Two threads with different budgets: the short one times out, the
        long one completes — no cross-talk (impossible with one SIGALRM)."""
        outcomes = {}
        barrier = threading.Barrier(2)

        def short():
            barrier.wait(5)
            try:
                call_with_timeout(busy_loop, 0.2)
                outcomes["short"] = "completed"
            except JobTimeoutError:
                outcomes["short"] = "timeout"

        def long():
            barrier.wait(5)
            outcomes["long"] = call_with_timeout(lambda: busy_loop(0.05), 10.0)

        threads = [threading.Thread(target=short), threading.Thread(target=long)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert outcomes["short"] == "timeout"
        assert isinstance(outcomes["long"], int)

    def test_main_thread_path_still_enforces(self):
        with pytest.raises(JobTimeoutError):
            call_with_timeout(busy_loop, 0.2)


class TestExecuteJobOffMainThread:
    def test_timeout_status_from_worker_thread(self, monkeypatch):
        monkeypatch.setattr(VerificationJob, "run", lambda self: busy_loop())
        outcome = in_thread(lambda: execute_job(make_job(), timeout=0.2))
        assert outcome.status == JobStatus.TIMEOUT
        assert "budget" in (outcome.error or "")

    def test_run_override_is_subject_to_the_budget(self):
        outcome = in_thread(
            lambda: execute_job(make_job(), timeout=0.2, run=lambda: busy_loop())
        )
        assert outcome.status == JobStatus.TIMEOUT

    def test_job_level_timeout_wins_off_main_thread(self, monkeypatch):
        monkeypatch.setattr(VerificationJob, "run", lambda self: busy_loop())
        outcome = in_thread(lambda: execute_job(make_job(timeout=0.2), timeout=60.0))
        assert outcome.status == JobStatus.TIMEOUT


class TestBatchExecutorOffMainThread:
    def test_serial_batch_enforces_timeout_in_worker_thread(self, monkeypatch):
        """The serial executor path (workers=1) used to silently skip budget
        enforcement when hosted anywhere but the POSIX main thread."""
        monkeypatch.setattr(VerificationJob, "run", lambda self: busy_loop())
        executor = BatchExecutor(workers=1, timeout=0.2)
        results = in_thread(lambda: executor.run([make_job()]))
        assert [outcome.status for outcome in results] == [JobStatus.TIMEOUT]
