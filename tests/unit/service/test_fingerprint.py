"""Unit tests: fingerprint stability and sensitivity."""

from repro.service import VerificationJob, job_fingerprint, normalize_source

ORIGINAL = """
#define N 16
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

# Same program, different whitespace and no #define folding.
ORIGINAL_REFORMATTED = """
f(int A[], int B[]) {
    int k;
    for (k = 0; k < 16; k++)
s1: B[k] = A[k] + A[k + 1];
}
"""

TRANSFORMED = """
#define N 16
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""


def make_job(**overrides):
    fields = dict(
        name="job",
        original_source=ORIGINAL,
        transformed_source=TRANSFORMED,
    )
    fields.update(overrides)
    return VerificationJob(**fields)


class TestNormalizeSource:
    def test_whitespace_insensitive(self):
        assert normalize_source(ORIGINAL) == normalize_source(ORIGINAL_REFORMATTED)

    def test_different_programs_differ(self):
        assert normalize_source(ORIGINAL) != normalize_source(TRANSFORMED)

    def test_unparseable_text_falls_back_to_stripped(self):
        assert normalize_source("  not a program  ") == "not a program"


class TestJobFingerprint:
    def test_stable_across_calls(self):
        assert job_fingerprint(make_job()) == job_fingerprint(make_job())

    def test_sha256_hex_shape(self):
        fingerprint = job_fingerprint(make_job())
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_ignores_job_name_and_metadata_and_expectation(self):
        baseline = job_fingerprint(make_job())
        assert job_fingerprint(make_job(name="other")) == baseline
        assert job_fingerprint(make_job(metadata={"a": 1})) == baseline
        assert job_fingerprint(make_job(expected_equivalent=False)) == baseline

    def test_whitespace_insensitive(self):
        assert job_fingerprint(make_job()) == job_fingerprint(
            make_job(original_source=ORIGINAL_REFORMATTED)
        )

    def test_sensitive_to_programs_and_options(self):
        baseline = job_fingerprint(make_job())
        assert job_fingerprint(make_job(transformed_source=ORIGINAL)) != baseline
        assert job_fingerprint(make_job(method="basic")) != baseline
        assert job_fingerprint(make_job(outputs=("B",))) != baseline
        assert job_fingerprint(make_job(tabling=False)) != baseline
        assert job_fingerprint(make_job(operators=(("min", "AC"),))) != baseline

    def test_operator_declaration_order_is_canonicalised(self):
        first = job_fingerprint(make_job(operators=(("min", "AC"), ("max", "C"))))
        second = job_fingerprint(make_job(operators=(("max", "C"), ("min", "CA"))))
        assert first == second
