"""Unit tests: fingerprint stability and sensitivity."""

from repro.service import (
    CheckOptions,
    ResultCache,
    VerificationJob,
    job_fingerprint,
    normalize_source,
)

ORIGINAL = """
#define N 16
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

# Same program, different whitespace and no #define folding.
ORIGINAL_REFORMATTED = """
f(int A[], int B[]) {
    int k;
    for (k = 0; k < 16; k++)
s1: B[k] = A[k] + A[k + 1];
}
"""

TRANSFORMED = """
#define N 16
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""


def make_job(**overrides):
    fields = dict(
        name="job",
        original_source=ORIGINAL,
        transformed_source=TRANSFORMED,
    )
    fields.update(overrides)
    return VerificationJob(**fields)


class TestNormalizeSource:
    def test_whitespace_insensitive(self):
        assert normalize_source(ORIGINAL) == normalize_source(ORIGINAL_REFORMATTED)

    def test_different_programs_differ(self):
        assert normalize_source(ORIGINAL) != normalize_source(TRANSFORMED)

    def test_unparseable_text_falls_back_to_stripped(self):
        assert normalize_source("  not a program  ") == "not a program"


class TestJobFingerprint:
    def test_stable_across_calls(self):
        assert job_fingerprint(make_job()) == job_fingerprint(make_job())

    def test_sha256_hex_shape(self):
        fingerprint = job_fingerprint(make_job())
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_ignores_job_name_and_metadata_and_expectation(self):
        baseline = job_fingerprint(make_job())
        assert job_fingerprint(make_job(name="other")) == baseline
        assert job_fingerprint(make_job(metadata={"a": 1})) == baseline
        assert job_fingerprint(make_job(expected_equivalent=False)) == baseline

    def test_whitespace_insensitive(self):
        assert job_fingerprint(make_job()) == job_fingerprint(
            make_job(original_source=ORIGINAL_REFORMATTED)
        )

    def test_sensitive_to_programs_and_options(self):
        baseline = job_fingerprint(make_job())
        assert job_fingerprint(make_job(transformed_source=ORIGINAL)) != baseline
        assert job_fingerprint(make_job(method="basic")) != baseline
        assert job_fingerprint(make_job(outputs=("B",))) != baseline
        assert job_fingerprint(make_job(tabling=False)) != baseline
        assert job_fingerprint(make_job(operators=(("min", "AC"),))) != baseline

    def test_operator_declaration_order_is_canonicalised(self):
        first = job_fingerprint(make_job(operators=(("min", "AC"), ("max", "C"))))
        second = job_fingerprint(make_job(operators=(("max", "C"), ("min", "CA"))))
        assert first == second

    def test_timeout_does_not_split_the_key_space(self):
        # A timeout aborts a check; it can never change a computed verdict,
        # so re-running with a different budget must hit the same cache entry.
        assert job_fingerprint(make_job(timeout=5.0)) == job_fingerprint(make_job())


class TestOptionsNeverAliasCachedVerdicts:
    """Regression: the result-cache key must cover every checker option.

    A verdict computed under one option set (e.g. ``method="basic"``) being
    served for a request with another (``method="extended"``) is a soundness
    bug of the service layer; the :class:`CheckOptions` fingerprint folded
    into :func:`job_fingerprint` prevents it.
    """

    def test_options_object_changes_fingerprint(self):
        baseline = job_fingerprint(make_job())
        basic = make_job()
        basic = VerificationJob(
            name=basic.name,
            original_source=basic.original_source,
            transformed_source=basic.transformed_source,
            options=CheckOptions(method="basic"),
        )
        assert job_fingerprint(basic) != baseline

    def test_flat_and_options_spellings_agree(self):
        flat = make_job(method="basic", outputs=("B",), tabling=False)
        via_options = VerificationJob(
            name="job",
            original_source=ORIGINAL,
            transformed_source=TRANSFORMED,
            options=CheckOptions(method="basic", outputs=("B",), tabling=False),
        )
        assert job_fingerprint(flat) == job_fingerprint(via_options)

    def test_basic_verdict_is_never_served_for_extended_request(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        basic_job = make_job(method="basic")
        extended_job = make_job(method="extended")
        basic_result = basic_job.run()
        cache.put(job_fingerprint(basic_job), basic_result)
        # The same pair under the extended method must miss the cache.
        assert cache.get(job_fingerprint(extended_job)) is None
        hit = cache.get(job_fingerprint(basic_job))
        assert hit is not None and hit.method == "basic"

    def test_every_option_field_splits_the_key(self):
        baseline = job_fingerprint(make_job())
        variants = [
            make_job(method="basic"),
            make_job(outputs=("B",)),
            make_job(correspondences=(("x", "y"),)),
            make_job(operators=(("min", "AC"),)),
            make_job(tabling=False),
            make_job(check_preconditions=False),
        ]
        fingerprints = {job_fingerprint(job) for job in variants}
        assert baseline not in fingerprints
        assert len(fingerprints) == len(variants)
