"""Unit tests: job model serialization and in-process execution."""

import pickle

from repro.service import JobResult, JobStatus, VerificationJob, execute_job

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED_EQ = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""

TRANSFORMED_BAD = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
t1:     B[k] = A[k] + A[k+2];
}
"""


def test_job_dict_round_trip():
    job = VerificationJob(
        name="j",
        original_source=ORIGINAL,
        transformed_source=TRANSFORMED_EQ,
        method="basic",
        outputs=("B",),
        correspondences=(("t", "t2"),),
        operators=(("min", "AC"),),
        tabling=False,
        expected_equivalent=True,
        metadata={"source": "test"},
    )
    clone = VerificationJob.from_dict(job.to_dict())
    assert clone == job


def test_job_is_picklable():
    job = VerificationJob("j", ORIGINAL, TRANSFORMED_EQ)
    assert pickle.loads(pickle.dumps(job)) == job


def test_job_run_verdicts():
    assert VerificationJob("eq", ORIGINAL, TRANSFORMED_EQ).run().equivalent
    assert not VerificationJob("bad", ORIGINAL, TRANSFORMED_BAD).run().equivalent


def test_execute_job_ok_and_expectation():
    outcome = execute_job(
        VerificationJob("eq", ORIGINAL, TRANSFORMED_EQ, expected_equivalent=True)
    )
    assert outcome.status == JobStatus.OK
    assert outcome.equivalent is True
    assert outcome.matches_expectation is True
    assert outcome.elapsed_seconds > 0
    assert outcome.result is not None


def test_execute_job_detected_bug_matches_expectation():
    outcome = execute_job(
        VerificationJob("bad", ORIGINAL, TRANSFORMED_BAD, expected_equivalent=False)
    )
    assert outcome.status == JobStatus.OK
    assert outcome.equivalent is False
    assert outcome.matches_expectation is True


def test_execute_job_captures_errors():
    outcome = execute_job(VerificationJob("broken", "not a program", "also broken"))
    assert outcome.status == JobStatus.ERROR
    assert outcome.equivalent is None
    assert outcome.matches_expectation is None
    assert "LexError" in (outcome.error or "")


def test_job_result_dict_round_trip():
    outcome = execute_job(
        VerificationJob("eq", ORIGINAL, TRANSFORMED_EQ, expected_equivalent=True)
    )
    data = outcome.to_dict()
    clone = JobResult.from_dict(data)
    assert clone.name == outcome.name
    assert clone.status == outcome.status
    assert clone.equivalent == outcome.equivalent
    assert clone.result is not None
    assert clone.result.to_dict() == outcome.result.to_dict()
    # the derived field is exported but not stored
    assert data["matches_expectation"] is True
