"""The witness sub-block of the scenario summary (diagnosis gates)."""

from repro.service import JobStatus, aggregate_results, format_summary
from repro.service.job import JobResult


def _outcome(name, equivalent, metadata):
    return JobResult(
        name=name,
        status=JobStatus.OK,
        equivalent=equivalent,
        expected_equivalent=equivalent,
        metadata=metadata,
    )


def _report_block(confirmed=True, bisection_step="mutation"):
    return {
        "equivalent": False,
        "confirmed": confirmed,
        "outputs": [],
        "replay": None,
        "bisection": None if bisection_step is None else {"step_index": 2, "step_name": bisection_step},
        "notes": [],
    }


class TestWitnessSummary:
    def test_no_failure_reports_no_witness_block(self):
        summary = aggregate_results(
            [_outcome("a", True, {"expected_label": "EQUIVALENT"})]
        )
        assert "witness" not in summary["scenarios"]

    def test_confirmed_witness_and_bisection_hit(self):
        metadata = {
            "expected_label": "NOT_EQUIVALENT",
            "oracle": {"label": "NOT_EQUIVALENT", "witness_seed": 0},
            "mutation": {"kind": "write-index"},
            "failure_report": _report_block(confirmed=True),
        }
        summary = aggregate_results([_outcome("bug", False, metadata)])
        witness = summary["scenarios"]["witness"]
        assert witness["diagnosed"] == 1 and witness["confirmed"] == 1
        assert witness["witness_errors"] == []
        assert witness["bisection_hits"] == 1 and witness["bisection_misses"] == []
        text = format_summary(summary)
        assert "1/1 failures confirmed" in text
        assert "WITNESS ERRS" not in text

    def test_oracle_witness_without_replay_confirmation_is_a_hard_error(self):
        metadata = {
            "expected_label": "NOT_EQUIVALENT",
            "oracle": {"label": "NOT_EQUIVALENT", "witness_seed": 3},
            "failure_report": _report_block(confirmed=False, bisection_step=None),
        }
        summary = aggregate_results([_outcome("bad", False, metadata)])
        witness = summary["scenarios"]["witness"]
        assert witness["witness_errors"] == ["bad"]
        assert "WITNESS ERRS" in format_summary(summary)

    def test_unconfirmed_without_oracle_witness_is_tracked_not_fatal(self):
        # Checker incompleteness: checker says NOT-EQUIVALENT, the oracle
        # holds no witness — no replay divergence is expected, so this is not
        # a gate violation.
        metadata = {
            "expected_label": "EQUIVALENT",
            "oracle": {"label": "EQUIVALENT", "witness_seed": None},
            "failure_report": _report_block(confirmed=False, bisection_step=None),
        }
        summary = aggregate_results([_outcome("conservative", False, metadata)])
        witness = summary["scenarios"]["witness"]
        assert witness["unconfirmed"] == ["conservative"]
        assert witness["witness_errors"] == []

    def test_mutated_twin_bisection_missing_the_mutation_is_flagged(self):
        metadata = {
            "expected_label": "NOT_EQUIVALENT",
            "oracle": {"label": "NOT_EQUIVALENT", "witness_seed": 1},
            "mutation": {"kind": "operator"},
            "failure_report": _report_block(confirmed=True, bisection_step="loop-shift"),
        }
        summary = aggregate_results([_outcome("twin", False, metadata)])
        witness = summary["scenarios"]["witness"]
        assert witness["bisection_misses"] == ["twin"]
        assert "BISECT MISS" in format_summary(summary)

    def test_witness_block_survives_the_jsonl_round_trip(self):
        import json

        metadata = {
            "expected_label": "NOT_EQUIVALENT",
            "oracle": {"label": "NOT_EQUIVALENT", "witness_seed": 0},
            "failure_report": _report_block(),
        }
        summary = aggregate_results([_outcome("bug", False, metadata)])
        assert json.loads(json.dumps(summary))["scenarios"]["witness"]["diagnosed"] == 1
