"""Unit tests: result cache hit/miss, persistence, corruption recovery."""

import json
import os

from repro.checker import CheckStats, Diagnostic, EquivalenceResult, OutputReport
from repro.service import ResultCache


def make_result(equivalent=True):
    return EquivalenceResult(
        equivalent=equivalent,
        outputs=[OutputReport(array="B", equivalent=equivalent, checked_domain="{[k]}")],
        diagnostics=[]
        if equivalent
        else [Diagnostic("leaf-mismatch", "leaves differ", output_array="B")],
        stats=CheckStats(elapsed_seconds=0.25, compare_calls=3),
        method="extended",
    )


FP = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = ResultCache(None)
        assert cache.get(FP) is None
        cache.put(FP, make_result())
        cached = cache.get(FP)
        assert cached is not None and cached.equivalent
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(None, memory_entries=2)
        cache.put(FP, make_result())
        cache.put(OTHER, make_result(False))
        cache.put("ef" + "2" * 62, make_result())
        assert cache.get(FP) is None  # evicted (oldest)
        assert cache.stats.evictions == 1


class TestDiskCache:
    def test_round_trip_across_instances(self, tmp_path):
        directory = str(tmp_path / "cache")
        ResultCache(directory).put(FP, make_result(False))
        fresh = ResultCache(directory)
        cached = fresh.get(FP)
        assert cached is not None
        assert not cached.equivalent
        assert cached.diagnostics[0].kind == "leaf-mismatch"
        assert cached.stats.compare_calls == 3

    def test_sharded_layout_and_len(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put(FP, make_result())
        cache.put(OTHER, make_result())
        assert os.path.exists(os.path.join(directory, "ab", FP + ".json"))
        assert len(cache) == 2

    def test_corrupt_json_is_a_miss_and_deleted(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put(FP, make_result())
        path = os.path.join(directory, "ab", FP + ".json")
        with open(path, "w") as handle:
            handle.write("{ not json")
        fresh = ResultCache(directory)
        assert fresh.get(FP) is None
        assert fresh.stats.corrupt_entries == 1
        assert not os.path.exists(path)

    def test_stale_format_version_is_a_miss(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put(FP, make_result())
        path = os.path.join(directory, "ab", FP + ".json")
        with open(path) as handle:
            payload = json.load(handle)
        payload["format_version"] = -1
        with open(path, "w") as handle:
            json.dump(payload, handle)
        fresh = ResultCache(directory)
        assert fresh.get(FP) is None
        assert not os.path.exists(path)

    def test_missing_result_key_is_recovered(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put(FP, make_result())
        path = os.path.join(directory, "ab", FP + ".json")
        with open(path) as handle:
            payload = json.load(handle)
        del payload["result"]
        with open(path, "w") as handle:
            json.dump(payload, handle)
        fresh = ResultCache(directory)
        assert fresh.get(FP) is None
        assert fresh.stats.corrupt_entries == 1

    def test_clear(self, tmp_path):
        directory = str(tmp_path / "cache")
        cache = ResultCache(directory)
        cache.put(FP, make_result())
        cache.clear()
        assert len(cache) == 0
        assert cache.get(FP) is None
