"""Unit tests: corpus enumeration and job-file loading."""

import json

import pytest

from repro.service import CorpusSpec, build_corpus, job_fingerprint, jobs_from_file
from repro.workloads import kernel_names


class TestBuildCorpus:
    def test_kernel_jobs(self):
        jobs = build_corpus(CorpusSpec(kernels=("fir", "downsample")))
        assert [job.name for job in jobs] == ["kernel/fir", "kernel/downsample"]
        assert all(job.expected_equivalent for job in jobs)
        assert jobs[0].metadata["source"] == "kernel"

    def test_all_kernels_expands_registry(self):
        jobs = build_corpus(CorpusSpec(kernels=("all",)))
        assert len(jobs) == len(kernel_names())

    def test_generated_and_buggy_labels(self):
        spec = CorpusSpec(generated=3, buggy=2, size=16, transform_steps=2, seed=5)
        jobs = build_corpus(spec)
        assert len(jobs) == 5
        equivalent = [job for job in jobs if job.expected_equivalent]
        buggy = [job for job in jobs if not job.expected_equivalent]
        assert len(equivalent) == 3 and len(buggy) == 2
        assert all("mutation" in job.metadata for job in buggy)
        assert all(job.metadata["source"] == "generator" for job in jobs)

    def test_deterministic_fingerprints(self):
        spec = CorpusSpec(generated=2, buggy=2, size=16, transform_steps=2)
        first = [job_fingerprint(job) for job in build_corpus(spec)]
        second = [job_fingerprint(job) for job in build_corpus(spec)]
        assert first == second

    def test_corpus_grows_by_appending(self):
        small = build_corpus(CorpusSpec(generated=2, size=16, transform_steps=2))
        large = build_corpus(CorpusSpec(generated=4, size=16, transform_steps=2))
        assert [job.name for job in large[:2]] == [job.name for job in small]
        assert [job_fingerprint(job) for job in large[:2]] == [
            job_fingerprint(job) for job in small
        ]


SOURCE = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + 1;
}
"""


class TestJobsFromFile:
    def test_inline_sources(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([
            {"name": "pair", "original_source": SOURCE, "transformed_source": SOURCE,
             "expected_equivalent": True},
        ]))
        jobs = jobs_from_file(str(path))
        assert len(jobs) == 1
        assert jobs[0].name == "pair"
        assert jobs[0].expected_equivalent is True

    def test_file_references_resolved_relative_to_job_file(self, tmp_path):
        (tmp_path / "orig.c").write_text(SOURCE)
        (tmp_path / "trans.c").write_text(SOURCE)
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([
            {"original": "orig.c", "transformed": "trans.c"},
        ]))
        jobs = jobs_from_file(str(path))
        assert jobs[0].name == "job-0"
        assert jobs[0].original_source == SOURCE

    def test_rejects_non_list(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({"name": "oops"}))
        with pytest.raises(ValueError):
            jobs_from_file(str(path))

    def test_rejects_job_without_sources(self, tmp_path):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps([{"name": "incomplete"}]))
        with pytest.raises(ValueError):
            jobs_from_file(str(path))
