"""Unit tests for the Fig. 1 workload module."""

import pytest

from repro.lang import check_program_class, outputs_equal, random_input_provider, run_program
from repro.workloads import FIG1_SOURCES, fig1_original, fig1_program, fig1_ver3_erroneous


class TestFig1Programs:
    def test_all_versions_available(self):
        assert set(FIG1_SOURCES) == {"a", "b", "c", "d"}

    @pytest.mark.parametrize("version", "abcd")
    def test_versions_parse_and_are_in_class(self, version):
        program = fig1_program(version)
        assert program.name == "foo"
        assert check_program_class(program) == []
        assert program.param_names() == ("A", "B", "C")

    def test_default_size_is_paper_size(self):
        program = fig1_original()
        assert program.defines["N"] == 1024

    def test_resizing(self):
        program = fig1_program("b", 32)
        assert program.defines["N"] == 32
        # the k < 512 split must scale with N
        from repro.lang import program_to_text

        assert "512" not in program_to_text(program)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            fig1_program("a", 7)
        with pytest.raises(ValueError):
            fig1_program("a", 2)
        with pytest.raises(KeyError):
            fig1_program("e")

    def test_specification_of_equivalent_versions(self):
        """Versions (a), (b), (c) compute C[k] = B[2k] + B[k] + A[2k] + A[k]."""
        n = 16
        provider = random_input_provider(seed=0)
        reference = {
            (k,): provider("B", (2 * k,)) + provider("B", (k,)) + provider("A", (2 * k,)) + provider("A", (k,))
            for k in range(n)
        }
        for version in "abc":
            outputs = run_program(fig1_program(version, n), provider)
            assert outputs["C"] == reference, f"version {version} deviates from the specification"

    def test_erroneous_version_differs_exactly_on_even_indices(self):
        """Version (d) computes A[k]+B[k]+A[k]+B[k] on even k and the correct value on odd k."""
        n = 16
        provider = random_input_provider(seed=1)
        good = run_program(fig1_program("a", n), provider)["C"]
        bad = run_program(fig1_ver3_erroneous(n), provider)["C"]
        for k in range(n):
            expected_bad = (
                provider("A", (k,)) + provider("B", (k,)) + provider("A", (k,)) + provider("B", (k,))
                if k % 2 == 0
                else good[(k,)]
            )
            assert bad[(k,)] == expected_bad
