"""Unit tests for the random program / pair generator."""

import pytest

from repro.analysis import check_dataflow
from repro.lang import check_program_class, outputs_equal, random_input_provider, run_program
from repro.workloads import GeneratedPair, RandomProgramGenerator


class TestGeneration:
    @pytest.mark.parametrize("seed", range(5))
    def test_generated_programs_are_well_formed(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=4, size=24)
        program = generator.generate()
        assert check_program_class(program) == []
        assert check_dataflow(program) == []
        assert program.output_arrays() == ("out",)

    def test_generation_is_deterministic(self):
        first = RandomProgramGenerator(seed=3, stages=3, size=16).generate()
        second = RandomProgramGenerator(seed=3, stages=3, size=16).generate()
        assert first == second

    def test_different_seeds_differ(self):
        first = RandomProgramGenerator(seed=1, stages=3, size=16).generate()
        second = RandomProgramGenerator(seed=2, stages=3, size=16).generate()
        assert first != second

    def test_stage_count_controls_statements(self):
        small = RandomProgramGenerator(seed=0, stages=2, size=16).generate()
        large = RandomProgramGenerator(seed=0, stages=6, size=16).generate()
        assert len(large.assignments()) > len(small.assignments())

    def test_generated_programs_are_executable(self):
        program = RandomProgramGenerator(seed=4, stages=4, size=16).generate()
        outputs = run_program(program, random_input_provider(0))
        assert len(outputs["out"]) == 16


class TestGeneratedPairs:
    @pytest.mark.parametrize("seed", range(4))
    def test_equivalent_pairs_agree_on_inputs(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=3, size=20)
        pair = generator.generate_pair(transform_steps=3)
        assert isinstance(pair, GeneratedPair)
        assert pair.expected_equivalent
        provider = random_input_provider(seed + 100)
        assert outputs_equal(
            run_program(pair.original, provider), run_program(pair.transformed, provider)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_error_injected_pairs_disagree(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=3, size=20)
        pair = generator.generate_pair(transform_steps=2, inject_error=True)
        assert not pair.expected_equivalent
        assert pair.mutation is not None
        provider = random_input_provider(seed + 7)
        try:
            same = outputs_equal(
                run_program(pair.original, provider), run_program(pair.transformed, provider)
            )
        except Exception:
            same = False  # e.g. the mutation made the program read undefined elements
        assert not same

    def test_transform_steps_recorded(self):
        pair = RandomProgramGenerator(seed=9, stages=3, size=20).generate_pair(transform_steps=3)
        assert pair.steps
        assert all(step.name for step in pair.steps)

    def test_basic_only_pairs(self):
        pair = RandomProgramGenerator(seed=11, stages=3, size=20).generate_pair(
            transform_steps=3, allow_algebraic=False
        )
        assert all(step.name != "algebraic-reassociation" for step in pair.steps)
