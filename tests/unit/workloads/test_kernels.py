"""Unit tests for the DSP kernel suite (structure + interpreter agreement at small sizes)."""

import pytest

from repro.lang import check_program_class, outputs_equal, random_input_provider, run_program
from repro.analysis import check_dataflow
from repro.workloads import KERNEL_REGISTRY, KernelPair, kernel_names, kernel_pair

SMALL_SIZES = {
    "fir": dict(n=10, taps=3),
    "conv2d": dict(rows=5, cols=5),
    "matvec": dict(rows=5, cols=4),
    "wavelet_lift": dict(n=12),
    "sad": dict(blocks=3, width=3),
    "prefix_sum": dict(n=8),
    "downsample": dict(n=12),
}


class TestRegistry:
    def test_registry_names(self):
        assert set(kernel_names()) == set(KERNEL_REGISTRY)
        assert len(kernel_names()) >= 7

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            kernel_pair("does_not_exist")

    def test_metadata_fields(self):
        pair = kernel_pair("fir", **SMALL_SIZES["fir"])
        assert isinstance(pair, KernelPair)
        assert pair.name == "fir"
        assert pair.description
        assert pair.uses_recurrence

    def test_algebraic_and_recurrence_flags_cover_both_values(self):
        pairs = [kernel_pair(name, **SMALL_SIZES[name]) for name in kernel_names()]
        assert any(p.uses_recurrence for p in pairs)
        assert any(not p.uses_recurrence for p in pairs)
        assert any(not p.uses_algebraic for p in pairs)


@pytest.mark.parametrize("name", sorted(SMALL_SIZES))
class TestKernelPairs:
    def test_programs_are_in_the_allowed_class(self, name):
        pair = kernel_pair(name, **SMALL_SIZES[name])
        assert check_program_class(pair.original) == []
        assert check_program_class(pair.transformed) == []

    def test_dataflow_prerequisites_hold(self, name):
        pair = kernel_pair(name, **SMALL_SIZES[name])
        assert check_dataflow(pair.original) == []
        assert check_dataflow(pair.transformed) == []

    def test_interpreter_agreement_on_random_inputs(self, name):
        pair = kernel_pair(name, **SMALL_SIZES[name])
        for seed in (0, 1, 2):
            provider = random_input_provider(seed)
            assert outputs_equal(
                run_program(pair.original, provider), run_program(pair.transformed, provider)
            )

    def test_transformed_is_structurally_different(self, name):
        pair = kernel_pair(name, **SMALL_SIZES[name])
        assert pair.original != pair.transformed
