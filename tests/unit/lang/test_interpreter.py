"""Unit tests for the reference interpreter."""

import pytest

from repro.lang import (
    InterpreterError,
    outputs_equal,
    parse_program,
    random_input_provider,
    run_program,
)


def program(source):
    return parse_program(source)


class TestExecution:
    def test_simple_copy(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = A[k]; }")
        outputs = run_program(p, {"A": [10, 20, 30, 40]})
        assert outputs == {"C": {(0,): 10, (1,): 20, (2,): 30, (3,): 40}}

    def test_arithmetic_operators(self):
        p = program(
            "f(int A[], int B[], int C[]) { int k; for(k=0;k<3;k++) s: C[k] = A[k]*2 + B[k] - 1; }"
        )
        outputs = run_program(p, {"A": [1, 2, 3], "B": [10, 20, 30]})
        assert [outputs["C"][(k,)] for k in range(3)] == [11, 23, 35]

    def test_division_truncates_toward_zero(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<2;k++) s: C[k] = A[k] / 2; }")
        outputs = run_program(p, {"A": [-3, 3]})
        assert outputs["C"][(0,)] == -1  # C semantics, not floor
        assert outputs["C"][(1,)] == 1

    def test_decrementing_and_strided_loops(self):
        p = program(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 6; k >= 0; k -= 2)
            s1:     C[k] = A[k];
            }
            """
        )
        outputs = run_program(p, {"A": list(range(10, 20))})
        assert sorted(outputs["C"]) == [(0,), (2,), (4,), (6,)]

    def test_if_else(self):
        p = program(
            """
            f(int A[], int C[]) {
                int k;
                for (k = 0; k < 4; k++) {
                    if (k < 2)
            s1:         C[k] = A[k];
                    else
            s2:         C[k] = 0 - A[k];
                }
            }
            """
        )
        outputs = run_program(p, {"A": [1, 2, 3, 4]})
        assert [outputs["C"][(k,)] for k in range(4)] == [1, 2, -3, -4]

    def test_intermediate_arrays_and_multidim(self):
        p = program(
            """
            f(int A[], int C[]) {
                int i, j, t[2][3];
                for (i = 0; i < 2; i++)
                    for (j = 0; j < 3; j++)
            s1:         t[i][j] = A[3*i + j];
                for (i = 0; i < 2; i++)
            s2:     C[i] = t[i][0] + t[i][2];
            }
            """
        )
        outputs = run_program(p, {"A": [1, 2, 3, 4, 5, 6]})
        assert outputs["C"] == {(0,): 4, (1,): 10}

    def test_builtin_function_calls(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<3;k++) s: C[k] = abs(A[k]); }")
        outputs = run_program(p, {"A": [-5, 0, 7]})
        assert [outputs["C"][(k,)] for k in range(3)] == [5, 0, 7]

    def test_custom_function_table(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<2;k++) s: C[k] = twice(A[k]); }")
        outputs = run_program(p, {"A": [3, 4]}, functions={"twice": lambda v: 2 * v})
        assert [outputs["C"][(k,)] for k in range(2)] == [6, 8]

    def test_loop_bound_depending_on_outer_iterator(self):
        p = program(
            """
            f(int A[], int C[]) {
                int i, j, t[4][4];
                for (i = 0; i < 4; i++)
                    for (j = 0; j < i; j++)
            s1:         t[i][j] = A[j];
                for (i = 1; i < 4; i++)
            s2:     C[i] = t[i][0];
            }
            """
        )
        outputs = run_program(p, {"A": [7, 8, 9, 10]})
        assert outputs["C"] == {(1,): 7, (2,): 7, (3,): 7}


class TestErrorsAndProviders:
    def test_unknown_function_raises(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<2;k++) s: C[k] = mystery(A[k]); }")
        with pytest.raises(InterpreterError):
            run_program(p, {"A": [1, 2]})

    def test_read_of_undefined_intermediate_raises(self):
        p = program(
            """
            f(int A[], int C[]) {
                int k, t[4];
                for (k = 0; k < 2; k++)
            s1:     t[k] = A[k];
                for (k = 0; k < 4; k++)
            s2:     C[k] = t[k];
            }
            """
        )
        with pytest.raises(InterpreterError):
            run_program(p, {"A": [1, 2, 3, 4]})

    def test_division_by_zero_raises(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<1;k++) s: C[k] = A[k] / 0; }")
        with pytest.raises(InterpreterError):
            run_program(p, {"A": [1]})

    def test_single_assignment_check(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[0] = A[k]; }")
        with pytest.raises(InterpreterError):
            run_program(p, {"A": [1, 2, 3, 4]}, check_single_assignment=True)
        # without the check the last write wins
        outputs = run_program(p, {"A": [1, 2, 3, 4]})
        assert outputs["C"][(0,)] == 4

    def test_random_provider_is_deterministic(self):
        provider_a = random_input_provider(seed=5)
        provider_b = random_input_provider(seed=5)
        assert provider_a("A", (3,)) == provider_b("A", (3,))
        assert provider_a("A", (3,)) != random_input_provider(seed=6)("A", (3,))

    def test_provider_backed_execution(self):
        p = program("f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = A[k] + A[k+1]; }")
        provider = random_input_provider(seed=1)
        outputs = run_program(p, provider)
        expected = {(k,): provider("A", (k,)) + provider("A", (k + 1,)) for k in range(4)}
        assert outputs["C"] == expected

    def test_outputs_equal_helper(self):
        assert outputs_equal({"C": {(0,): 1}}, {"C": {(0,): 1}})
        assert not outputs_equal({"C": {(0,): 1}}, {"C": {(0,): 2}})
        assert not outputs_equal({"C": {(0,): 1}}, {"D": {(0,): 1}})
