"""Unit tests for the mini-C tokenizer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import Token, TokenStream, tokenize


class TestTokenize:
    def test_identifiers_and_numbers(self):
        tokens = tokenize("foo 123 bar42")
        assert [(t.kind, t.text) for t in tokens] == [
            ("ident", "foo"),
            ("number", "123"),
            ("ident", "bar42"),
        ]

    def test_keywords_recognised(self):
        tokens = tokenize("for if else int void")
        assert all(t.kind == "keyword" for t in tokens)

    def test_compound_operators(self):
        tokens = tokenize("k++ ; k-- ; k += 2 ; a <= b ; a == b ; x && y")
        texts = [t.text for t in tokens]
        assert "++" in texts and "--" in texts and "+=" in texts
        assert "<=" in texts and "==" in texts and "&&" in texts

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[2].line == 3

    def test_line_comment_skipped(self):
        tokens = tokenize("a // comment until end\nb")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_block_comment_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_array_subscript_tokens(self):
        tokens = tokenize("A[2*k-2]")
        assert [t.text for t in tokens] == ["A", "[", "2", "*", "k", "-", "2", "]"]

    def test_preprocessor_define(self):
        tokens = tokenize("#define N 1024")
        assert [t.text for t in tokens] == ["#", "define", "N", "1024"]


class TestTokenStream:
    def make(self, text):
        return TokenStream(tokenize(text))

    def test_peek_and_next(self):
        stream = self.make("a b")
        assert stream.peek().text == "a"
        assert stream.next().text == "a"
        assert stream.next().text == "b"
        assert stream.at_end()

    def test_next_past_end_raises(self):
        stream = self.make("")
        with pytest.raises(LexError):
            stream.next()

    def test_accept(self):
        stream = self.make("a b")
        assert stream.accept("a")
        assert not stream.accept("z")
        assert stream.accept("b")

    def test_expect_success_and_failure(self):
        stream = self.make("( )")
        stream.expect("(")
        with pytest.raises(LexError):
            stream.expect("[")

    def test_expect_kind(self):
        stream = self.make("name 42")
        assert stream.expect_kind("ident").text == "name"
        with pytest.raises(LexError):
            stream.expect_kind("ident")

    def test_peek_offset(self):
        stream = self.make("a b c")
        assert stream.peek(2).text == "c"
        assert stream.peek(5) is None
