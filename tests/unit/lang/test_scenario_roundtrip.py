"""Printer/parser round-trip properties over scenario-generated programs.

Corpora are persisted as mini-C source text, so for every program the engine
can emit, ``parse(print(p))`` must (i) be a printer fixpoint, (ii) execute
identically, and (iii) re-check equivalent against ``p`` — otherwise pairs
would silently change meaning on their way through a corpus file.
"""

import pytest

from repro.lang import (
    outputs_equal,
    parse_program,
    program_to_text,
    random_input_provider,
    run_program,
)
from repro.scenarios import ScenarioSpec, build_scenarios
from repro.verifier import Verifier

SPEC = ScenarioSpec(seed=9, pairs=8, mutation_rate=0.5, size=12, max_depth=4)


@pytest.fixture(scope="module")
def corpus():
    return build_scenarios(SPEC)


def _programs(corpus):
    for pair in corpus:
        yield pair.name, pair.original
        yield pair.name + "/transformed", pair.transformed


class TestScenarioRoundTrip:
    def test_print_parse_is_fixpoint(self, corpus):
        for name, program in _programs(corpus):
            text = program_to_text(program)
            reparsed = parse_program(text)
            assert program_to_text(reparsed) == text, f"printer not a fixpoint for {name}"
            assert reparsed == program, f"parse(print(p)) != p for {name}"

    def test_roundtrip_preserves_execution(self, corpus):
        from repro.lang.errors import InterpreterError

        for name, program in _programs(corpus):
            reparsed = parse_program(program_to_text(program))
            provider = random_input_provider(0)
            try:
                reference = run_program(program, provider)
            except InterpreterError:
                # Buggy twins may legitimately read undefined elements; the
                # round-trip must reproduce exactly that failure behaviour.
                with pytest.raises(InterpreterError):
                    run_program(reparsed, provider)
                continue
            assert outputs_equal(
                reference, run_program(reparsed, provider)
            ), f"round-trip changed outputs of {name}"

    def test_roundtrip_rechecks_equivalent(self, corpus):
        # The checker itself accepts parse(print(p)) against p (sampled: the
        # full corpus would re-run dozens of checks for little extra signal).
        verifier = Verifier()
        equivalent_pairs = [p for p in corpus if p.expected_equivalent]
        for pair in equivalent_pairs[:3]:
            reparsed = parse_program(program_to_text(pair.transformed))
            result = verifier.check(pair.transformed, reparsed)
            assert result.equivalent, f"round-trip of {pair.name} not provable"
