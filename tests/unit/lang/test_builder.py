"""Unit tests for the ProgramBuilder DSL."""

import pytest

from repro.lang import ProgramBuilder, check_program_class, program_to_text, run_program
from repro.lang.ast import Comparison, ForLoop, IfThenElse


class TestBuilder:
    def test_simple_program(self):
        b = ProgramBuilder("scale", params=[("A", [8]), ("C", [8])])
        with b.loop("i", 0, 8):
            b.assign("s1", b.at("C", b.v("i")), b.mul(2, b.at("A", b.v("i"))))
        program = b.build()
        assert program.name == "scale"
        assert check_program_class(program) == []
        outputs = run_program(program, {"A": list(range(8))})
        assert outputs["C"][(3,)] == 6

    def test_nested_loops_and_locals(self):
        b = ProgramBuilder("sum2d", params=[("A", [4, 4]), ("C", [4])], locals_=[("t", [4, 4])])
        with b.loop("i", 0, 4):
            with b.loop("j", 0, 4):
                b.assign("s1", b.at("t", b.v("i"), b.v("j")), b.add(b.at("A", b.v("i"), b.v("j")), 1))
        with b.loop("i", 0, 4):
            b.assign("s2", b.at("C", b.v("i")), b.at("t", b.v("i"), 0))
        program = b.build()
        assert check_program_class(program) == []
        assert len(program.assignments()) == 2

    def test_negative_step_loop(self):
        b = ProgramBuilder("rev", params=[("A", [8]), ("C", [8])])
        with b.loop("i", 7, 0, step=-1):
            b.assign("s1", b.at("C", b.v("i")), b.at("A", b.v("i")))
        loop = b.build().body[0]
        assert isinstance(loop, ForLoop)
        assert loop.step == -1
        assert loop.cond_op == ">="

    def test_if_scope(self):
        b = ProgramBuilder("cond", params=[("A", [8]), ("C", [8])])
        with b.loop("i", 0, 8):
            with b.if_(b.cmp("<", b.v("i"), 4)):
                b.assign("s1", b.at("C", b.v("i")), b.at("A", b.v("i")))
        statement = b.build().body[0].body[0]
        assert isinstance(statement, IfThenElse)
        assert isinstance(statement.condition, Comparison)

    def test_if_stmt_with_then_and_else_scopes(self):
        b = ProgramBuilder("cond", params=[("A", [8]), ("C", [8])])
        with b.loop("i", 0, 8):
            conditional = b.if_stmt(b.cmp("<", b.v("i"), 4))
            with b.then_scope(conditional):
                b.assign("s1", b.at("C", b.v("i")), b.at("A", b.v("i")))
            with b.else_scope(conditional):
                b.assign("s2", b.at("C", b.v("i")), b.neg(b.at("A", b.v("i"))))
        program = b.build()
        assert check_program_class(program) == []
        outputs = run_program(program, {"A": list(range(8))})
        assert outputs["C"][(6,)] == -6

    def test_auto_labels_are_unique(self):
        b = ProgramBuilder("auto", params=[("A", [4]), ("C", [4])], locals_=[("t", [4])])
        with b.loop("i", 0, 4):
            b.assign(None, b.at("t", b.v("i")), b.at("A", b.v("i")))
            b.assign(None, b.at("C", b.v("i")), b.at("t", b.v("i")))
        labels = [a.label for a in b.build().assignments()]
        assert len(labels) == len(set(labels)) == 2

    def test_call_and_expression_helpers(self):
        b = ProgramBuilder("calls", params=[("A", [4]), ("C", [4])])
        with b.loop("i", 0, 4):
            b.assign("s1", b.at("C", b.v("i")), b.call("max", b.at("A", b.v("i")), b.c(0)))
        text = program_to_text(b.build())
        assert "max(A[i], 0)" in text

    def test_build_returns_independent_copy(self):
        b = ProgramBuilder("copytest", params=[("A", [4]), ("C", [4])])
        with b.loop("i", 0, 4):
            b.assign("s1", b.at("C", b.v("i")), b.at("A", b.v("i")))
        first = b.build()
        second = b.build()
        assert first == second
        assert first is not second
        first.body.clear()
        assert second.body
