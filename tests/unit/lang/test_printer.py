"""Unit tests for the mini-C pretty-printer (round-trips with the parser)."""

import pytest

from repro.lang import (
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    IntConst,
    UnaryOp,
    VarRef,
    condition_to_text,
    expr_to_text,
    parse_program,
    program_to_text,
    statement_to_text,
)
from repro.workloads import FIG1_SOURCES


class TestExprPrinting:
    def test_simple_terms(self):
        assert expr_to_text(IntConst(42)) == "42"
        assert expr_to_text(VarRef("k")) == "k"
        assert expr_to_text(ArrayRef("A", [VarRef("k")])) == "A[k]"

    def test_nested_array_indices(self):
        expr = ArrayRef("A", [BinOp("-", BinOp("*", IntConst(2), VarRef("k")), IntConst(2))])
        assert expr_to_text(expr) == "A[2 * k - 2]"

    def test_precedence_parentheses(self):
        # (a + b) * 2 must keep its parentheses
        expr = BinOp("*", BinOp("+", VarRef("a"), VarRef("b")), IntConst(2))
        assert expr_to_text(expr) == "(a + b) * 2"

    def test_no_spurious_parentheses(self):
        expr = BinOp("+", BinOp("*", VarRef("a"), IntConst(2)), VarRef("b"))
        assert expr_to_text(expr) == "a * 2 + b"

    def test_unary_and_call(self):
        assert expr_to_text(UnaryOp("-", VarRef("x"))) == "-x"
        assert expr_to_text(Call("max", [VarRef("a"), IntConst(0)])) == "max(a, 0)"

    def test_condition_text(self):
        cond = Comparison("<", VarRef("k"), IntConst(512))
        assert condition_to_text(cond) == "k < 512"


class TestStatementPrinting:
    def test_assignment_with_label(self):
        statement = Assignment("s1", ArrayRef("C", [VarRef("k")]), VarRef("k"))
        assert statement_to_text(statement).strip() == "s1: C[k] = k;"

    def test_loop_increments(self):
        source = "f(int A[], int C[]) { int k; for (k = 8; k >= 0; k -= 2) s: C[k] = A[k]; }"
        text = program_to_text(parse_program(source))
        assert "k -= 2" in text


class TestRoundTrip:
    @pytest.mark.parametrize("version", sorted(FIG1_SOURCES))
    def test_fig1_roundtrip(self, version):
        program = parse_program(FIG1_SOURCES[version])
        reparsed = parse_program(program_to_text(program))
        assert reparsed == program

    def test_roundtrip_with_if_else_and_calls(self):
        source = """
        #define N 32
        f(int A[], int B[], int C[])
        {
            int k, t[N];
            for (k = 0; k < N; k++) {
                if (k < 16 && k >= 2)
        s1:         t[k] = max(A[k], B[k]);
                else
        s2:         t[k] = A[k] - B[k];
            }
            for (k = 0; k < N; k++)
        s3:     C[k] = t[k] + 1;
        }
        """
        program = parse_program(source)
        assert parse_program(program_to_text(program)) == program

    def test_roundtrip_multidimensional(self):
        source = """
        f(int A[], int C[])
        {
            int i, j, t[4][6];
            for (i = 0; i < 4; i++)
                for (j = 0; j < 6; j++)
        s1:         t[i][j] = A[6*i + j];
            for (i = 0; i < 4; i++)
        s2:     C[i] = t[i][0];
        }
        """
        program = parse_program(source)
        assert parse_program(program_to_text(program)) == program
