"""Unit tests for the mini-C parser."""

import pytest

from repro.lang import (
    ArrayRef,
    Assignment,
    BinOp,
    Call,
    Comparison,
    ForLoop,
    IfThenElse,
    IntConst,
    ParseSyntaxError,
    parse_program,
)
from repro.lang.errors import LexError


SIMPLE = """
#define N 16
copy(int A[], int C[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     C[k] = A[k];
}
"""


class TestBasicParsing:
    def test_function_name_and_params(self):
        program = parse_program(SIMPLE)
        assert program.name == "copy"
        assert program.param_names() == ("A", "C")

    def test_define_recorded_and_substituted(self):
        program = parse_program(SIMPLE)
        assert program.defines == {"N": 16}
        loop = program.body[0]
        assert isinstance(loop, ForLoop)
        assert loop.bound == IntConst(16)

    def test_labelled_assignment(self):
        program = parse_program(SIMPLE)
        assignment = program.assignment_by_label("s1")
        assert assignment.target == ArrayRef("C", [assignment.target.indices[0]])

    def test_local_declarations(self):
        source = """
        f(int A[], int C[]) {
            int k, tmp[8], buf[2][3];
            for (k = 0; k < 8; k++)
        s1:     C[k] = A[k];
        }
        """
        program = parse_program(source)
        declarations = program.declarations()
        assert declarations["tmp"].dims == (8,)
        assert declarations["buf"].dims == (2, 3)
        assert declarations["k"].is_scalar

    def test_constant_folding_of_define_expressions(self):
        source = """
        #define N 32
        f(int A[], int C[]) {
            int k, tmp[2*N];
            for (k = 0; k < N/2; k++)
        s1:     C[k] = A[2*k];
        }
        """
        program = parse_program(source)
        assert program.declarations()["tmp"].dims == (64,)
        loop = program.body[0]
        assert loop.bound == IntConst(16)

    def test_void_return_type_accepted(self):
        program = parse_program("void f(int A[], int C[]) { int k; for(k=0;k<2;k++) s: C[k] = A[k]; }")
        assert program.name == "f"


class TestLoops:
    def test_decrementing_loop(self):
        source = """
        f(int A[], int C[]) {
            int k;
            for (k = 9; k >= 1; k--)
        s1:     C[k] = A[k];
        }
        """
        loop = parse_program(source).body[0]
        assert loop.step == -1
        assert loop.cond_op == ">="

    def test_strided_loop(self):
        source = "f(int A[], int C[]) { int k; for (k = 0; k < 16; k += 2) s1: C[k] = A[k]; }"
        loop = parse_program(source).body[0]
        assert loop.step == 2

    def test_var_equals_var_plus_const_increment(self):
        source = "f(int A[], int C[]) { int k; for (k = 0; k < 16; k = k + 4) s1: C[k] = A[k]; }"
        loop = parse_program(source).body[0]
        assert loop.step == 4

    def test_nested_loops_without_braces(self):
        source = """
        f(int A[], int C[]) {
            int i, j;
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
        s1:         C[4*i + j] = A[i] + A[j];
        }
        """
        outer = parse_program(source).body[0]
        assert isinstance(outer.body[0], ForLoop)

    def test_loop_condition_on_other_variable_rejected(self):
        with pytest.raises(ParseSyntaxError):
            parse_program("f(int A[], int C[]) { int k, j; for (k = 0; j < 4; k++) s: C[k] = A[k]; }")

    def test_unsupported_increment_rejected(self):
        with pytest.raises((ParseSyntaxError, LexError)):
            parse_program("f(int A[], int C[]) { int k; for (k = 0; k < 4; k *= 2) s: C[k] = A[k]; }")


class TestConditionals:
    def test_if_else(self):
        source = """
        f(int A[], int C[]) {
            int k;
            for (k = 0; k < 8; k++) {
                if (k < 4)
        s1:         C[k] = A[k];
                else
        s2:         C[k] = A[8 - k];
            }
        }
        """
        loop = parse_program(source).body[0]
        conditional = loop.body[0]
        assert isinstance(conditional, IfThenElse)
        assert isinstance(conditional.condition, Comparison)
        assert conditional.then_body[0].label == "s1"
        assert conditional.else_body[0].label == "s2"

    def test_conjunctive_condition(self):
        source = """
        f(int A[], int C[]) {
            int k;
            for (k = 0; k < 8; k++)
                if (k >= 2 && k < 6)
        s1:         C[k] = A[k];
        }
        """
        loop = parse_program(source).body[0]
        conditional = loop.body[0]
        assert len(conditional.condition.parts) == 2


class TestExpressions:
    def test_precedence(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = A[k] + A[k+1] * 2; }"
        rhs = parse_program(source).assignment_by_label("s").rhs
        assert isinstance(rhs, BinOp) and rhs.op == "+"
        assert isinstance(rhs.rhs, BinOp) and rhs.rhs.op == "*"

    def test_parentheses(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = (A[k] + A[k+1]) * 2; }"
        rhs = parse_program(source).assignment_by_label("s").rhs
        assert rhs.op == "*"

    def test_unary_minus(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = -A[k]; }"
        rhs = parse_program(source).assignment_by_label("s").rhs
        assert rhs.op == "-"

    def test_function_call(self):
        source = "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = max(A[k], B[k]); }"
        rhs = parse_program(source).assignment_by_label("s").rhs
        assert isinstance(rhs, Call)
        assert rhs.func == "max"
        assert len(rhs.args) == 2

    def test_multi_dimensional_access(self):
        source = "f(int A[], int C[]) { int i, j, t[4][4]; for(i=0;i<4;i++) for(j=0;j<4;j++) s: t[i][j] = A[i]; }"
        target = parse_program(source).assignment_by_label("s").target
        assert len(target.indices) == 2


class TestErrors:
    def test_scalar_assignment_target_rejected(self):
        with pytest.raises(ParseSyntaxError):
            parse_program("f(int A[], int C[]) { int k, x; for(k=0;k<4;k++) s: x = A[k]; }")

    def test_label_on_loop_rejected(self):
        with pytest.raises(ParseSyntaxError):
            parse_program("f(int A[], int C[]) { int k; lbl: for(k=0;k<4;k++) s: C[k] = A[k]; }")

    def test_trailing_garbage_rejected(self):
        with pytest.raises((ParseSyntaxError, LexError)):
            parse_program(SIMPLE + "\nint stray;")

    def test_unsupported_directive_rejected(self):
        with pytest.raises((ParseSyntaxError, LexError)):
            parse_program("#include <stdio.h>\nf(int A[]) { }")

    def test_non_constant_array_size_rejected(self):
        with pytest.raises(ParseSyntaxError):
            parse_program("f(int A[], int C[]) { int k, t[k]; for(k=0;k<4;k++) s: C[k] = A[k]; }")
