"""Unit tests for the allowed-program-class validator."""

import pytest

from repro.lang import ProgramClassError, check_program_class, parse_program, require_program_class
from repro.workloads import FIG1_SOURCES


def issues_of(source):
    return check_program_class(parse_program(source))


class TestAcceptedPrograms:
    @pytest.mark.parametrize("version", sorted(FIG1_SOURCES))
    def test_fig1_programs_are_in_class(self, version):
        assert issues_of(FIG1_SOURCES[version]) == []

    def test_multidimensional_and_calls_allowed(self):
        source = """
        f(int A[4][4], int C[]) {
            int i, j, t[4][4];
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
        s1:         t[i][j] = max(A[i][j], 0);
            for (i = 0; i < 4; i++)
        s2:     C[i] = t[i][i];
        }
        """
        assert issues_of(source) == []

    def test_require_program_class_passes_silently(self):
        require_program_class(parse_program(FIG1_SOURCES["a"]))


class TestRejectedPrograms:
    def test_undeclared_array(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = undeclared[k]; }"
        assert any("undeclared" in issue for issue in issues_of(source))

    def test_data_dependent_index(self):
        source = "f(int A[], int B[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = A[B[k]]; }"
        assert any("not affine" in issue for issue in issues_of(source))

    def test_nonlinear_index(self):
        source = "f(int A[], int C[]) { int i, j, t[4][4]; for(i=0;i<4;i++) for(j=0;j<4;j++) s: t[i][j] = A[i*j]; }"
        assert any("not affine" in issue for issue in issues_of(source))

    def test_unknown_scalar_in_index(self):
        source = "f(int A[], int C[]) { int k, m; for(k=0;k<4;k++) s: C[k] = A[m]; }"
        assert issues_of(source)

    def test_scalar_read_as_data(self):
        source = "f(int A[], int C[]) { int k, x; for(k=0;k<4;k++) s: C[k] = A[k] + x; }"
        assert issues_of(source)

    def test_dimension_mismatch(self):
        source = "f(int A[4][4], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = A[k]; }"
        assert any("dimensional" in issue for issue in issues_of(source))

    def test_duplicate_labels(self):
        source = """
        f(int A[], int C[]) {
            int k, t[4];
            for(k=0;k<4;k++) s1: t[k] = A[k];
            for(k=0;k<4;k++) s1: C[k] = t[k];
        }
        """
        assert any("duplicate" in issue for issue in issues_of(source))

    def test_loop_variable_shadowing(self):
        source = """
        f(int A[], int C[]) {
            int k;
            for (k = 0; k < 4; k++)
                for (k = 0; k < 4; k++)
        s1:         C[k] = A[k];
        }
        """
        assert any("shadows" in issue for issue in issues_of(source))

    def test_data_dependent_loop_bound(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[A[k]] = A[k]; }"
        assert issues_of(source)

    def test_require_program_class_raises_with_details(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<4;k++) s: C[k] = undeclared[k]; }"
        with pytest.raises(ProgramClassError) as excinfo:
            require_program_class(parse_program(source))
        assert "undeclared" in str(excinfo.value)
