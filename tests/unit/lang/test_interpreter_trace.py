"""Traced execution and statement-label attribution of the interpreter.

Witness replay (:mod:`repro.diagnostics.replay`) maps diverging cells and
runtime failures back to source statements; these tests pin the two
contracts it relies on: :func:`run_program_traced` records the writing
assignment of every cell, and :class:`InterpreterError` carries the label of
the statement it originated in.
"""

import pytest

from repro.lang import (
    parse_program,
    random_input_provider,
    run_program,
    run_program_traced,
)
from repro.lang.errors import InterpreterError

SOURCE = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i] + 1;
  }
}
"""

BROKEN_SOURCE = """
#define N 6
void f(int A[N], int C[N])
{
  int i;
  int tmp[N];
  for (i = 0; i < N; i++) {
s1: tmp[i] = A[i] * 2;
  }
  for (i = 0; i < N; i++) {
s2: C[i] = tmp[i + 1] + 1;
  }
}
"""


class TestTracedRun:
    def test_outputs_match_untraced_run(self):
        program = parse_program(SOURCE)
        provider = random_input_provider(0)
        plain = run_program(program, provider)
        traced, trace = run_program_traced(program, random_input_provider(0))
        assert plain == traced
        assert trace.writers  # something was recorded

    def test_writers_name_the_assignments(self):
        program = parse_program(SOURCE)
        _, trace = run_program_traced(program, random_input_provider(0))
        for i in range(6):
            assert trace.writer_of("tmp", (i,)) == "s1"
            assert trace.writer_of("C", (i,)) == "s2"

    def test_writer_of_unknown_cell_is_none(self):
        program = parse_program(SOURCE)
        _, trace = run_program_traced(program, random_input_provider(0))
        assert trace.writer_of("C", (99,)) is None
        assert trace.writer_of("nope", (0,)) is None

    def test_input_cells_have_no_writer(self):
        program = parse_program(SOURCE)
        _, trace = run_program_traced(program, random_input_provider(0))
        assert trace.writer_of("A", (0,)) is None


class TestErrorAttribution:
    def test_undefined_read_carries_the_statement_label(self):
        program = parse_program(BROKEN_SOURCE)
        with pytest.raises(InterpreterError) as excinfo:
            run_program(program, random_input_provider(0))
        assert excinfo.value.statement_label == "s2"
        assert "s2" in str(excinfo.value)

    def test_traced_run_attributes_errors_too(self):
        program = parse_program(BROKEN_SOURCE)
        with pytest.raises(InterpreterError) as excinfo:
            run_program_traced(program, random_input_provider(0))
        assert excinfo.value.statement_label == "s2"

    def test_single_assignment_violation_carries_the_label(self):
        source = """
        #define N 4
        void f(int A[N], int C[N])
        {
          int i;
          for (i = 0; i < N; i++) {
        s1: C[0] = A[i];
          }
        }
        """
        program = parse_program(source)
        with pytest.raises(InterpreterError) as excinfo:
            run_program(program, random_input_provider(0), check_single_assignment=True)
        assert excinfo.value.statement_label == "s1"

    def test_label_defaults_to_none(self):
        error = InterpreterError("boom")
        assert error.statement_label is None
