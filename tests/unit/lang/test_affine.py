"""Unit tests for lowering AST expressions / conditions to affine constraints."""

import pytest

from repro.lang import (
    And,
    ArrayRef,
    BinOp,
    Call,
    Comparison,
    IntConst,
    NotAffineError,
    UnaryOp,
    VarRef,
)
from repro.lang.affine import (
    condition_to_pieces,
    expr_to_affine,
    loop_constraints,
    negated_condition_pieces,
)
from repro.presburger import LinExpr, Set


def k(value=None):
    return VarRef("k") if value is None else IntConst(value)


class TestExprToAffine:
    def test_constant_and_variable(self):
        assert expr_to_affine(IntConst(5)) == LinExpr.constant(5)
        assert expr_to_affine(VarRef("k")) == LinExpr.var("k")

    def test_linear_combination(self):
        expr = BinOp("-", BinOp("*", IntConst(2), VarRef("k")), IntConst(2))
        assert expr_to_affine(expr) == 2 * LinExpr.var("k") - 2

    def test_constant_on_the_right(self):
        expr = BinOp("*", VarRef("k"), IntConst(3))
        assert expr_to_affine(expr) == 3 * LinExpr.var("k")

    def test_unary_minus(self):
        assert expr_to_affine(UnaryOp("-", VarRef("k"))) == -LinExpr.var("k")

    def test_constants_dictionary(self):
        assert expr_to_affine(VarRef("N"), {"N": 64}) == LinExpr.constant(64)

    def test_array_read_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_affine(ArrayRef("A", [VarRef("k")]))

    def test_call_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_affine(Call("f", [VarRef("k")]))

    def test_nonlinear_product_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_affine(BinOp("*", VarRef("i"), VarRef("j")))

    def test_division_rejected(self):
        with pytest.raises(NotAffineError):
            expr_to_affine(BinOp("/", VarRef("i"), IntConst(2)))


def domain_of(pieces, names=("k",), box=range(-10, 30)):
    """Enumerate the integer points satisfying a DNF piece list."""
    result = set()
    for piece in pieces:
        s = Set.build(list(names), piece)
        for x in box:
            if s.contains([x]):
                result.add(x)
    return result


class TestConditions:
    def test_simple_comparison(self):
        pieces = condition_to_pieces(Comparison("<", VarRef("k"), IntConst(4)))
        assert domain_of(pieces) == {x for x in range(-10, 30) if x < 4}

    def test_not_equal_produces_two_pieces(self):
        pieces = condition_to_pieces(Comparison("!=", VarRef("k"), IntConst(3)))
        assert len(pieces) == 2
        assert 3 not in domain_of(pieces)

    def test_conjunction(self):
        cond = And([Comparison(">=", VarRef("k"), IntConst(2)), Comparison("<", VarRef("k"), IntConst(6))])
        assert domain_of(condition_to_pieces(cond)) == {2, 3, 4, 5}

    def test_negation_of_comparison(self):
        pieces = negated_condition_pieces(Comparison("<", VarRef("k"), IntConst(4)))
        assert domain_of(pieces) == {x for x in range(-10, 30) if x >= 4}

    def test_negation_of_conjunction_covers_complement(self):
        cond = And([Comparison(">=", VarRef("k"), IntConst(2)), Comparison("<", VarRef("k"), IntConst(6))])
        positive = domain_of(condition_to_pieces(cond))
        negative = domain_of(negated_condition_pieces(cond))
        box = set(range(-10, 30))
        assert positive | negative == box
        assert positive & negative == set()

    def test_negation_of_equality(self):
        pieces = negated_condition_pieces(Comparison("==", VarRef("k"), IntConst(0)))
        assert 0 not in domain_of(pieces)
        assert 1 in domain_of(pieces)


class TestLoopConstraints:
    def check(self, init, cond_op, bound, step, expected):
        constraints, exists = loop_constraints("k", IntConst(init), cond_op, IntConst(bound), step)
        s = Set.build(["k"], constraints, exists=exists)
        values = {x for x in range(-20, 40) if s.contains([x])}
        assert values == set(expected)

    def test_up_counting_loop(self):
        self.check(0, "<", 8, 1, range(0, 8))

    def test_down_counting_loop(self):
        self.check(10, ">=", 1, -1, range(1, 11))

    def test_strided_loop(self):
        self.check(0, "<", 10, 2, [0, 2, 4, 6, 8])

    def test_strided_down_loop(self):
        self.check(9, ">", 0, -3, [9, 6, 3])

    def test_inclusive_upper_bound(self):
        self.check(0, "<=", 5, 1, range(0, 6))
