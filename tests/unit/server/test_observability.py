"""The server's observability surface, end to end against an in-process daemon.

Covers the tentpole contracts: the structured JSONL request log (accepted and
completed events share the job fingerprint, the completed event carries the
verdict and dedup/cache attribution), the deep ``stats`` snapshot and its
Prometheus rendering (validated by the same ``tools/prom_lint.py`` gate CI
uses), slow-request capture with a zero threshold, and cross-process trace
propagation (``check`` with ``trace: true`` ships back server-side spans
whose root is tagged with the request id).
"""

import importlib.util
import json
import os
import threading

import pytest

from repro import telemetry
from repro.server import ServerClient, ServerConfig, ServerThread
from repro.server.pool import ServerStats
from repro.service import JobStatus, VerificationJob
from repro.service.report import SERVER_SNAPSHOT_VERSION, format_server_snapshot

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "prom_lint", os.path.join(REPO_ROOT, "tools", "prom_lint.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def make_job(name="pair"):
    return VerificationJob(
        name=name, original_source=ORIGINAL, transformed_source=TRANSFORMED
    )


@pytest.fixture
def observed_server(tmp_path):
    log_path = str(tmp_path / "requests.jsonl")
    config = ServerConfig(
        port=0,
        log_path=log_path,
        log_level="debug",
        slow_threshold=0.0,
        slow_capacity=4,
    )
    with ServerThread(config) as handle:
        yield handle, log_path


def read_log(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


class TestRequestLog:
    def test_check_lifecycle_events_share_the_fingerprint(self, observed_server):
        handle, log_path = observed_server
        with ServerClient(handle.address) as client:
            outcome = client.check_job(make_job())
        assert outcome.status == JobStatus.OK
        events = read_log(log_path)
        kinds = [event["event"] for event in events]
        assert "connect" in kinds
        accepted = next(e for e in events if e["event"] == "request_accepted")
        completed = next(e for e in events if e["event"] == "request_completed")
        assert accepted["fingerprint"] == completed["fingerprint"] == outcome.fingerprint
        assert accepted["request"] == completed["request"]
        assert completed["verdict"] is True
        assert completed["status"] == "ok"
        assert completed["dedup"] == "leader"
        assert completed["cache"] == "none"
        assert completed["wall_seconds"] > 0

    def test_cache_hit_attribution(self, observed_server):
        handle, log_path = observed_server
        with ServerClient(handle.address) as client:
            client.check_job(make_job())
            client.check_job(make_job(name="same-but-renamed"))
        events = read_log(log_path)
        completed = [e for e in events if e["event"] == "request_completed"]
        assert [e["cache"] for e in completed] == ["none", "verdict"]

    def test_disconnect_logged_at_debug(self, observed_server):
        import time

        handle, log_path = observed_server
        with ServerClient(handle.address) as client:
            client.ping()
        # the disconnect is logged by the server's reader task after the
        # client socket closes — poll briefly for it
        deadline = time.time() + 5.0
        while time.time() < deadline:
            events = read_log(log_path)
            if any(event["event"] == "disconnect" for event in events):
                break
            time.sleep(0.05)
        kinds = {event["event"] for event in events}
        assert "disconnect" in kinds
        # non-check requests appear at debug level
        ping_rows = [e for e in events if e.get("method") == "ping"]
        assert ping_rows and all(e["level"] == "debug" for e in ping_rows)


class TestPingAndStats:
    def test_ping_identifies_the_process(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            pong = client.ping()
        assert pong["pid"] == os.getpid()
        assert pong["protocol_version"] == 1
        assert pong["uptime_seconds"] >= 0
        assert pong["draining"] is False

    def test_deep_snapshot_fields(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            client.check_job(make_job())
            snapshot = client.stats()
        assert snapshot["schema_version"] == SERVER_SNAPSHOT_VERSION
        assert snapshot["pid"] == os.getpid()
        assert snapshot["protocol_version"] == 1
        assert snapshot["uptime_seconds"] > 0
        assert snapshot["checks_executed"] == 1
        assert snapshot["latency"]["request_seconds"]["count"] >= 1
        assert snapshot["latency"]["check_seconds"]["count"] == 1
        assert snapshot["opcache"]["misses"] >= 0
        assert snapshot["session_entries"] >= 0
        assert snapshot["persist"]["attached"] is False
        assert snapshot["request_log"]["events_written"] > 0
        assert snapshot["slow"]["threshold_seconds"] == 0.0
        # the human rendering accepts the same snapshot
        text = format_server_snapshot(snapshot)
        assert "requests" in text and "latency" in text

    def test_slow_ring_captures_everything_at_zero_threshold(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            client.check_job(make_job())
            snapshot = client.stats(slow=True)
        slow = snapshot["slow"]
        assert slow["captured"] == 1
        (record,) = slow["records"]
        assert record["fingerprint"]
        assert record["wall_seconds"] >= 0
        assert record["status"] == "ok"
        assert "phase_seconds" in record
        assert "opcache" in record

    def test_slow_ring_is_bounded(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            for index in range(6):  # capacity is 4
                client.check_job(make_job(name=f"job-{index}"))
            snapshot = client.stats(slow=True)
        slow = snapshot["slow"]
        assert slow["captured"] == 6
        assert len(slow["records"]) == 4

    def test_prometheus_rendering_passes_the_lint_gate(self, observed_server):
        handle, _ = observed_server
        lint = _load_lint()
        with ServerClient(handle.address) as client:
            client.check_job(make_job())
            envelope = client.stats(format="prometheus")
        assert envelope["format"] == "prometheus"
        assert "0.0.4" in envelope["content_type"]
        problems = lint.validate(envelope["text"])
        assert not problems, "\n".join(problems)
        # acceptance criterion: non-zero request-latency buckets
        buckets = [
            line
            for line in envelope["text"].splitlines()
            if line.startswith("repro_server_latency_request_seconds_bucket")
        ]
        assert buckets
        assert any(int(line.rsplit(" ", 1)[1]) > 0 for line in buckets)

    def test_unknown_stats_format_rejected(self, observed_server):
        handle, _ = observed_server
        from repro.server import ServerError

        with ServerClient(handle.address) as client:
            with pytest.raises(ServerError) as excinfo:
                client.stats(format="xml")
        assert excinfo.value.code == "invalid_request"


class TestTracePropagation:
    def test_traced_check_ships_request_tagged_spans(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            outcome = client.check_job(make_job(), trace=True)
        assert outcome.status == JobStatus.OK
        trace = outcome.telemetry
        assert trace is not None
        assert trace["pid"] == os.getpid()
        spans = trace["spans"]
        names = {span["name"] for span in spans}
        assert "server.request" in names
        assert "service.job" in names
        assert "verifier.check" in names
        root = next(span for span in spans if span["name"] == "server.request")
        assert root["args"]["request"] == 1
        # the worker-side spans carry the same request tag end to end
        check_span = next(span for span in spans if span["name"] == "verifier.check")
        assert check_span["args"]["request"] == 1

    def test_untraced_check_ships_no_spans(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            outcome = client.check_job(make_job())
        assert getattr(outcome, "telemetry", None) is None

    def test_tracer_is_quiesced_after_the_traced_request(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            client.check_job(make_job(), trace=True)
            client.check_job(make_job(name="untraced"), trace=False)
        assert telemetry.TRACER.enabled is False
        assert telemetry.spans() == []

    def test_spans_ingest_into_a_client_tracer(self, observed_server):
        handle, _ = observed_server
        with ServerClient(handle.address) as client:
            outcome = client.check_job(make_job(), trace=True)
        telemetry.reset()
        ingested = telemetry.ingest_spans(outcome.telemetry["spans"])
        assert ingested == len(outcome.telemetry["spans"]) > 0
        telemetry.reset()

    def test_run_jobs_trace_covers_each_job(self, observed_server):
        handle, _ = observed_server
        jobs = [make_job(name=f"batch-{index}") for index in range(3)]
        with ServerClient(handle.address) as client:
            results = client.run_jobs(jobs, trace=True)
        assert len(results) == 3
        for outcome in results:
            trace = outcome.telemetry
            assert trace and trace["spans"]
            root = [s for s in trace["spans"] if s["name"] == "server.request"]
            assert len(root) == 1


class TestServerStatsThreadSafety:
    def test_concurrent_inc_is_exact(self):
        stats = ServerStats()
        threads = 8
        per_thread = 2500
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                stats.inc("checks_executed")

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert stats.checks_executed == threads * per_thread
        assert stats.as_dict()["checks_executed"] == threads * per_thread
