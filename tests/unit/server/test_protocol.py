"""Unit tests: the server's newline-delimited JSON frame protocol."""

import pytest

from repro.server import protocol


class TestFrameRoundTrip:
    def test_request_round_trip(self):
        frame = protocol.request_frame("check", {"job": {"name": "j"}}, id=7)
        decoded = protocol.decode_frame(protocol.encode_frame(frame))
        assert decoded == {"id": 7, "method": "check", "params": {"job": {"name": "j"}}}

    def test_request_without_params(self):
        frame = protocol.request_frame("ping", id=1)
        decoded = protocol.decode_frame(protocol.encode_frame(frame))
        assert decoded == {"id": 1, "method": "ping"}

    def test_ok_response_round_trip(self):
        decoded = protocol.decode_frame(
            protocol.encode_frame(protocol.ok_response(3, {"equivalent": True}))
        )
        assert decoded["ok"] is True
        assert decoded["id"] == 3
        assert decoded["result"] == {"equivalent": True}

    def test_error_response_round_trip(self):
        decoded = protocol.decode_frame(
            protocol.encode_frame(protocol.error_response(None, protocol.ERROR_PARSE, "bad"))
        )
        assert decoded["ok"] is False
        assert decoded["id"] is None
        assert decoded["error"] == {"code": "parse_error", "message": "bad"}

    def test_encoded_frame_is_one_line(self):
        frame = protocol.encode_frame(protocol.request_frame("check", {"text": "a\nb"}, id=1))
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # embedded newlines must be escaped


class TestDecodeErrors:
    def test_oversized_frame(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_frame(b"x" * 100, max_bytes=50)
        assert excinfo.value.code == protocol.ERROR_FRAME_TOO_LARGE

    def test_malformed_json(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_frame(b"{not json]\n")
        assert excinfo.value.code == protocol.ERROR_PARSE

    def test_invalid_utf8(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_frame(b"\xff\xfe{}\n")
        assert excinfo.value.code == protocol.ERROR_PARSE

    def test_non_object_frame(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.decode_frame(b"[1, 2, 3]\n")
        assert excinfo.value.code == protocol.ERROR_INVALID_REQUEST


class TestValidateRequest:
    def test_valid_request(self):
        request_id, method, params = protocol.validate_request(
            {"id": 9, "method": "check", "params": {"timeout": 1.0}}
        )
        assert (request_id, method, params) == (9, "check", {"timeout": 1.0})

    def test_params_default_to_empty(self):
        _, method, params = protocol.validate_request({"id": 1, "method": "ping"})
        assert method == "ping"
        assert params == {}

    def test_missing_method(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.validate_request({"id": 1})
        assert excinfo.value.code == protocol.ERROR_INVALID_REQUEST

    def test_non_string_method(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.validate_request({"id": 1, "method": 42})
        assert excinfo.value.code == protocol.ERROR_INVALID_REQUEST

    def test_non_object_params(self):
        with pytest.raises(protocol.ProtocolError) as excinfo:
            protocol.validate_request({"id": 1, "method": "check", "params": [1]})
        assert excinfo.value.code == protocol.ERROR_INVALID_REQUEST
