"""Unit tests: the warm pool, the compiled store, and cross-request dedup.

The dedup tests pin down the server's coalescing contract (the same rule
the batch executor applies in-batch): two concurrent requests fuse onto one
in-flight leader *iff* they agree on both the job fingerprint and the
effective timeout budget — a leader's TIMEOUT verdict is budget-dependent
and must never be fanned out to a differently-budgeted duplicate.
"""

import asyncio
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.server.pool import CompiledStore, JobDispatcher, WarmVerifierPool
from repro.service import JobStatus, ResultCache, VerificationJob, job_fingerprint
from repro.service.job import JobResult
from repro.verifier import Verifier

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED_EQ = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     B[k] = A[k+1] + A[k];
}
"""


def make_job(name="j", timeout=None, expected=None):
    return VerificationJob(
        name=name,
        original_source=ORIGINAL,
        transformed_source=TRANSFORMED_EQ,
        timeout=timeout,
        expected_equivalent=expected,
    )


# --------------------------------------------------------------------------- #
# CompiledStore
# --------------------------------------------------------------------------- #
class TestCompiledStore:
    def test_hit_after_miss(self):
        store = CompiledStore(max_entries=4)
        first = store.get_or_compile(ORIGINAL)
        second = store.get_or_compile(ORIGINAL)
        assert first is second
        assert store.hits == 1 and store.misses == 1

    def test_lru_eviction_drops_oldest(self):
        store = CompiledStore(max_entries=2)
        store.get_or_compile(ORIGINAL)
        store.get_or_compile(TRANSFORMED_EQ)
        store.get_or_compile(ORIGINAL)  # refresh ORIGINAL
        third = "\n#define N 4\nf(int A[], int B[])\n{\n    int k;\n    for (k = 0; k < N; k++)\ns1:     B[k] = A[k];\n}\n"
        store.get_or_compile(third)  # evicts TRANSFORMED_EQ (least recent)
        assert store.evictions == 1
        hits_before = store.hits
        store.get_or_compile(ORIGINAL)
        assert store.hits == hits_before + 1  # survived the eviction

    def test_key_is_raw_text(self):
        assert CompiledStore.key(ORIGINAL) != CompiledStore.key(ORIGINAL + " ")


# --------------------------------------------------------------------------- #
# WarmVerifierPool
# --------------------------------------------------------------------------- #
class TestWarmVerifierPool:
    def test_warm_verdict_matches_direct_check(self):
        pool = WarmVerifierPool(workers=1)
        try:
            outcome = pool.run_job(make_job())
            direct = Verifier().check(ORIGINAL, TRANSFORMED_EQ)
            assert outcome.status == JobStatus.OK
            assert outcome.equivalent is True
            assert outcome.equivalent == direct.equivalent
            assert pool.stats.checks_executed == 1
        finally:
            pool.close()

    def test_second_run_hits_verdict_cache(self):
        pool = WarmVerifierPool(workers=1, cache=ResultCache())
        try:
            cold = pool.run_job(make_job())
            warm = pool.run_job(make_job(name="same-check-different-name"))
            assert not cold.cache_hit and warm.cache_hit
            assert warm.equivalent == cold.equivalent
            assert warm.fingerprint == cold.fingerprint
            assert pool.stats.cache_hits == 1
            assert pool.stats.checks_executed == 1
        finally:
            pool.close()

    def test_reset_drops_warm_state(self):
        pool = WarmVerifierPool(workers=1, cache=ResultCache())
        try:
            first = pool.run_job(make_job())
            pool.reset()
            assert len(pool.compiled) == 0
            again = pool.run_job(make_job())
            assert not again.cache_hit  # verdict cache was dropped too
            assert again.equivalent == first.equivalent
            assert pool.stats.checks_executed == 2
            assert pool.stats.resets == 1
        finally:
            pool.close()

    def test_compiled_store_shared_across_jobs(self):
        pool = WarmVerifierPool(workers=1)
        try:
            pool.run_job(make_job(name="a"))
            pool.run_job(make_job(name="b"))
            # Two jobs, two sources each, but each text parsed exactly once.
            assert pool.compiled.misses == 2
            assert pool.compiled.hits == 2
        finally:
            pool.close()

    def test_error_job_is_structured(self):
        pool = WarmVerifierPool(workers=1)
        try:
            job = VerificationJob(
                name="broken", original_source="not a program", transformed_source=ORIGINAL
            )
            outcome = pool.run_job(job)
            assert outcome.status == JobStatus.ERROR
            assert outcome.error
            assert pool.stats.errors == 1
        finally:
            pool.close()

    def test_effective_timeout_precedence(self):
        pool = WarmVerifierPool(workers=1, default_timeout=30.0)
        try:
            assert pool.effective_timeout(make_job(timeout=5.0), 10.0) == 5.0
            assert pool.effective_timeout(make_job(), 10.0) == 10.0
            assert pool.effective_timeout(make_job(), None) == 30.0
        finally:
            pool.close()

    def test_snapshot_carries_warm_state_blocks(self):
        pool = WarmVerifierPool(workers=2, cache=ResultCache())
        try:
            pool.run_job(make_job())
            snapshot = pool.snapshot()
            assert snapshot["checks_executed"] == 1
            assert snapshot["workers"] == 2
            assert snapshot["compiled_store"]["entries"] == 2
            assert snapshot["verdict_cache"] is not None
            assert 0.0 <= snapshot["cache_hit_rate"] <= 1.0
        finally:
            pool.close()


# --------------------------------------------------------------------------- #
# JobDispatcher: dedup by (fingerprint, effective timeout)
# --------------------------------------------------------------------------- #
def run_pair_through_dispatcher(job_a, request_a, job_b, request_b, outcome_for=None):
    """Drive two concurrent requests through a dispatcher over a fake pool.

    ``run_job`` is replaced with a gated fake so both requests are provably
    concurrent: the gate opens only after both have reached the dispatcher.
    Returns ``(executions, results)`` where *executions* records each
    ``(job name, request timeout)`` pair that actually ran.
    """
    pool = WarmVerifierPool(workers=2)
    executions = []
    gate = threading.Event()

    def fake_run_job(job, timeout=None, collect_spans=False, request_id=None, fingerprint=None):
        executions.append((job.name, timeout))
        assert gate.wait(10), "gate never opened"
        if outcome_for is not None:
            return outcome_for(job, timeout)
        return JobResult(
            name=job.name,
            status=JobStatus.OK,
            equivalent=True,
            fingerprint=job_fingerprint(job),
        )

    pool.run_job = fake_run_job
    dispatcher = JobDispatcher(pool)

    async def scenario():
        task_a = asyncio.create_task(dispatcher.run(job_a, request_a))
        await asyncio.sleep(0)  # leader registers before the first await
        task_b = asyncio.create_task(dispatcher.run(job_b, request_b))
        await asyncio.sleep(0)  # duplicate attaches (or becomes its own leader)
        gate.set()
        return await asyncio.gather(task_a, task_b)

    try:
        results = asyncio.run(scenario())
    finally:
        gate.set()
        pool.close()
    return executions, results


class TestDispatcherDedup:
    def test_identical_requests_coalesce_onto_one_leader(self):
        executions, (lead, follow) = run_pair_through_dispatcher(
            make_job(name="leader"), 5.0, make_job(name="follower", expected=True), 5.0
        )
        assert len(executions) == 1
        assert executions[0][0] == "leader"
        assert follow.name == "follower"
        assert follow.equivalent == lead.equivalent
        assert follow.metadata.get("deduplicated") is True
        assert follow.expected_equivalent is True
        assert not follow.cache_hit  # dedup reuse must not inflate the hit rate
        assert "deduplicated" not in lead.metadata

    def test_different_budgets_never_coalesce(self):
        executions, _ = run_pair_through_dispatcher(
            make_job(name="a"), 5.0, make_job(name="b"), 6.0
        )
        assert len(executions) == 2

    def test_job_level_timeout_enters_the_key(self):
        executions, _ = run_pair_through_dispatcher(
            make_job(name="a", timeout=1.0), None, make_job(name="b", timeout=2.0), None
        )
        assert len(executions) == 2

    def test_leader_timeout_not_fanned_to_other_budget(self):
        """A leader that times out under a short budget must not poison the
        concurrent duplicate running under a longer one."""

        def outcome_for(job, timeout):
            if timeout is not None and timeout <= 0.5:
                return JobResult(name=job.name, status=JobStatus.TIMEOUT, error="timed out")
            return JobResult(name=job.name, status=JobStatus.OK, equivalent=True)

        executions, (short, long) = run_pair_through_dispatcher(
            make_job(name="short"),
            0.5,
            make_job(name="long"),
            30.0,
            outcome_for=outcome_for,
        )
        assert len(executions) == 2
        assert short.status == JobStatus.TIMEOUT
        assert long.status == JobStatus.OK and long.equivalent is True

    def test_follower_inherits_leader_failure_within_same_budget(self):
        def outcome_for(job, timeout):
            return JobResult(name=job.name, status=JobStatus.ERROR, error="boom")

        executions, (lead, follow) = run_pair_through_dispatcher(
            make_job(name="a"), 5.0, make_job(name="b"), 5.0, outcome_for=outcome_for
        )
        assert len(executions) == 1
        assert lead.status == JobStatus.ERROR
        assert follow.status == JobStatus.ERROR
        assert follow.error == "boom"

    def test_inflight_table_empties_after_completion(self):
        pool = WarmVerifierPool(workers=1)
        pool.run_job = lambda job, timeout=None, *a, **k: JobResult(name=job.name, status=JobStatus.OK)
        dispatcher = JobDispatcher(pool)
        try:
            asyncio.run(dispatcher.run(make_job()))
            assert dispatcher.inflight == 0
        finally:
            pool.close()


BUDGETS = st.sampled_from([None, 0.25, 1.0, 5.0])


class TestDedupKeyProperty:
    """Property (satellite of the dedup rule): for identical jobs, requests
    coalesce exactly when their *effective* budgets agree — whatever mix of
    job-level, request-level and server-default timeouts produced them."""

    @settings(max_examples=25, deadline=None)
    @given(job_a=BUDGETS, job_b=BUDGETS, request_a=BUDGETS, request_b=BUDGETS)
    def test_coalesce_iff_effective_budgets_agree(self, job_a, job_b, request_a, request_b):
        a = make_job(name="a", timeout=job_a)
        b = make_job(name="b", timeout=job_b)
        executions, results = run_pair_through_dispatcher(a, request_a, b, request_b)
        reference = WarmVerifierPool(workers=1)
        try:
            should_coalesce = reference.effective_timeout(
                a, request_a
            ) == reference.effective_timeout(b, request_b)
        finally:
            reference.close()
        assert len(executions) == (1 if should_coalesce else 2)
        assert all(outcome.status == JobStatus.OK for outcome in results)

    @settings(max_examples=25, deadline=None)
    @given(job_timeout=BUDGETS, request_timeout=BUDGETS, default=BUDGETS)
    def test_effective_timeout_precedence_property(self, job_timeout, request_timeout, default):
        pool = WarmVerifierPool(workers=1, default_timeout=default)
        try:
            effective = pool.effective_timeout(make_job(timeout=job_timeout), request_timeout)
        finally:
            pool.close()
        if job_timeout is not None:
            assert effective == job_timeout
        elif request_timeout is not None:
            assert effective == request_timeout
        else:
            assert effective == default
