"""Unit tests for checker verdicts, statistics and diagnostics objects."""

import json

import pytest

from repro.checker import CheckStats, Diagnostic, DiagnosticKind, EquivalenceResult, OutputReport


class TestDiagnostic:
    def test_format_contains_all_sections(self):
        diagnostic = Diagnostic(
            DiagnosticKind.MAPPING_MISMATCH,
            "mappings differ",
            output_array="C",
            original_statements=("s1",),
            transformed_statements=("v3", "v1"),
            original_mapping="{ [x] -> [2x] }",
            transformed_mapping="{ [x] -> [x] }",
            mismatch_domain="{ [x] : x even }",
            original_path=("C", "s3", "B"),
            transformed_path=("C", "v3", "B"),
            suspect_statements=("v1", "v3"),
            suspect_arrays=("buf",),
        )
        text = diagnostic.format()
        assert "[mapping-mismatch]" in text
        assert "v3, v1" in text
        assert "{ [x] -> [2x] }" in text
        assert "buf" in text
        assert "C -> v3 -> B" in text

    def test_str_is_format(self):
        diagnostic = Diagnostic(DiagnosticKind.LEAF_MISMATCH, "leaf")
        assert str(diagnostic) == diagnostic.format()

    def test_all_kinds_listed(self):
        assert DiagnosticKind.MAPPING_MISMATCH in DiagnosticKind.ALL
        assert len(set(DiagnosticKind.ALL)) == len(DiagnosticKind.ALL)


class TestStatsAndResult:
    def test_stats_as_dict(self):
        stats = CheckStats(elapsed_seconds=1.5, compare_calls=10)
        data = stats.as_dict()
        assert data["elapsed_seconds"] == 1.5
        assert data["compare_calls"] == 10

    def test_stats_round_trip_preserves_unknown_keys(self):
        data = {
            "compare_calls": 5,
            "phase_seconds": {"engine": 1.0, "frontend": 0.25},
            "future_field": 42,
            "nested_future": {"a": [1, 2]},
        }
        stats = CheckStats.from_dict(data)
        assert stats.compare_calls == 5
        assert stats.phase_seconds == {"engine": 1.0, "frontend": 0.25}
        assert stats.extra == {"future_field": 42, "nested_future": {"a": [1, 2]}}
        rendered = stats.to_dict()
        assert rendered["future_field"] == 42
        assert rendered["nested_future"] == {"a": [1, 2]}
        assert rendered["phase_seconds"] == {"engine": 1.0, "frontend": 0.25}
        # A second trip through the same path stays stable.
        assert CheckStats.from_dict(rendered).to_dict() == rendered

    def test_result_bool_and_summary(self):
        result = EquivalenceResult(
            equivalent=True,
            outputs=[OutputReport("C", True, checked_domain="{ [k] : 0 <= k < 4 }")],
            diagnostics=[],
            stats=CheckStats(paths_checked=4),
            method="extended",
        )
        assert result
        assert "EQUIVALENT" in result.summary()
        assert "output C: ok" in result.summary()

    def test_failing_result_summary_lists_diagnostics(self):
        diagnostic = Diagnostic(DiagnosticKind.OPERATOR_MISMATCH, "ops differ")
        result = EquivalenceResult(
            equivalent=False,
            outputs=[OutputReport("C", False, failing_domain="{ [k] : k = 0 }")],
            diagnostics=[diagnostic],
            stats=CheckStats(),
        )
        assert not result
        text = result.summary()
        assert "NOT PROVEN EQUIVALENT" in text
        assert "ops differ" in text
        assert "failing on" in text

    def test_diagnostics_of_kind(self):
        diagnostics = [
            Diagnostic(DiagnosticKind.OPERATOR_MISMATCH, "a"),
            Diagnostic(DiagnosticKind.MAPPING_MISMATCH, "b"),
        ]
        result = EquivalenceResult(False, [], diagnostics, CheckStats())
        assert len(result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)) == 1
        assert len(result.failures()) == 2


class TestSerialization:
    def make_result(self):
        diagnostic = Diagnostic(
            DiagnosticKind.MAPPING_MISMATCH,
            "mappings differ",
            output_array="C",
            original_statements=("s1",),
            transformed_statements=("v3", "v1"),
            original_mapping="{ [x] -> [2x] }",
            mismatch_domain="{ [x] : x even }",
            original_path=("C", "s3", "B"),
            suspect_statements=("v1",),
            suspect_arrays=("buf",),
        )
        return EquivalenceResult(
            equivalent=False,
            outputs=[OutputReport("C", False, checked_domain="{ [k] }", failing_domain="{ [0] }")],
            diagnostics=[diagnostic],
            stats=CheckStats(elapsed_seconds=1.5, compare_calls=10, table_hits=2),
            method="basic",
        )

    def test_round_trip_preserves_everything(self):
        result = self.make_result()
        clone = EquivalenceResult.from_dict(result.to_dict())
        assert clone == result

    def test_to_dict_is_json_serialisable(self):
        result = self.make_result()
        restored = EquivalenceResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert restored == result
        assert restored.diagnostics[0].original_statements == ("s1",)
        assert isinstance(restored.diagnostics[0].transformed_statements, tuple)

    def test_round_trip_preserves_rendering(self):
        result = self.make_result()
        clone = EquivalenceResult.from_dict(result.to_dict())
        assert clone.summary() == result.summary()

    def test_from_dict_tolerates_missing_optional_sections(self):
        restored = EquivalenceResult.from_dict({"equivalent": True})
        assert restored.equivalent
        assert restored.outputs == []
        assert restored.diagnostics == []
        assert restored.method == "extended"

    def test_stats_round_trip(self):
        stats = CheckStats(elapsed_seconds=2.0, flatten_operations=7)
        assert CheckStats.from_dict(stats.to_dict()) == stats
