"""Unit tests for internal helpers of the checker engine (terms, matching, tabling)."""

import pytest

from repro.addg import build_addg
from repro.checker import default_registry
from repro.checker.engine import Engine, Term, _maximum_matching
from repro.presburger import Map, parse_map, parse_set
from repro.workloads import fig1_program


@pytest.fixture()
def engine():
    original = build_addg(fig1_program("a", 64))
    transformed = build_addg(fig1_program("c", 64))
    return Engine(original, transformed, registry=default_registry())


class TestMaximumMatching:
    def test_perfect_matching_found(self):
        compatibility = [
            [True, False, False],
            [False, True, False],
            [False, False, True],
        ]
        assert len(_maximum_matching(compatibility)) == 3

    def test_augmenting_path_needed(self):
        # row 0 can take either column, row 1 only column 0: Kuhn must re-route.
        compatibility = [
            [True, True],
            [True, False],
        ]
        matching = _maximum_matching(compatibility)
        assert len(matching) == 2
        assert dict((r, c) for r, c in matching) == {0: 1, 1: 0}

    def test_partial_matching(self):
        compatibility = [
            [True, False],
            [True, False],
        ]
        assert len(_maximum_matching(compatibility)) == 1

    def test_empty_matrix(self):
        assert _maximum_matching([]) == []


class TestTerms:
    def test_output_term_structure(self, engine):
        identity = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 64 }"))
        term = engine.output_term(0, "C", identity)
        assert term.kind == Term.ARRAY
        assert term.display() == "C"
        assert term.path_text() == ("C",)
        assert term.path_arrays() == ("C",)
        assert term.path_statements() == ()

    def test_with_rel_preserves_identity_fields(self, engine):
        identity = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 64 }"))
        term = engine.output_term(1, "C", identity)
        restricted = term.with_rel(identity.restrict_domain(parse_set("{ [k] : k < 8 }")))
        assert restricted.array == "C"
        assert restricted.side == 1
        assert restricted.rel.domain().count() == 8

    def test_term_keys_distinguish_relations(self, engine):
        small = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 8 }"))
        large = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 16 }"))
        key_small = engine._term_key(engine.output_term(0, "C", small))
        key_large = engine._term_key(engine.output_term(0, "C", large))
        assert key_small != key_large

    def test_term_keys_equal_for_equal_terms(self, engine):
        rel = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 8 }"))
        assert engine._term_key(engine.output_term(0, "C", rel)) == engine._term_key(
            engine.output_term(0, "C", rel)
        )


class TestResolution:
    def test_resolving_output_reaches_operators(self, engine):
        identity = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 64 }"))
        term = engine.output_term(0, "C", identity)
        pieces, ok = engine._resolve(term)
        assert ok
        assert pieces
        assert all(piece.kind == Term.OP for piece in pieces)

    def test_resolving_input_is_identity(self, engine):
        rel = parse_map("{ [k] -> [2k] : 0 <= k < 64 }")
        term = Term(Term.ARRAY, 0, rel, (("array", "A"),), array="A")
        pieces, ok = engine._resolve(term)
        assert ok and len(pieces) == 1 and pieces[0] is term

    def test_resolving_empty_relation_gives_no_pieces(self, engine):
        empty = Map.empty(("w0",), ("e0",))
        term = Term(Term.ARRAY, 0, empty, (("array", "tmp"),), array="tmp")
        pieces, ok = engine._resolve(term)
        assert ok and pieces == []

    def test_undefined_read_sets_flag_and_diagnostic(self, engine):
        # tmp in version (a) is defined on [0, 64); ask for elements beyond that.
        rel = parse_map("{ [k] -> [k + 60] : 0 <= k < 10 }")
        term = Term(Term.ARRAY, 0, rel, (("array", "tmp"),), array="tmp")
        pieces, ok = engine._resolve(term)
        assert not ok
        assert engine.diagnostics

    def test_compare_identical_terms_uses_table_on_repeat(self, engine):
        identity = Map.identity(("w0",), domain=parse_set("{ [k] : 0 <= k < 64 }"))
        term1 = engine.output_term(0, "C", identity)
        term2 = engine.output_term(1, "C", identity)
        assert engine.compare(term1, term2)
        hits_before = engine.stats.table_hits
        assert engine.compare(term1, term2)
        assert engine.stats.table_hits > hits_before


class TestEngineConfiguration:
    def test_invalid_method_rejected(self):
        addg = build_addg(fig1_program("a", 16))
        with pytest.raises(ValueError):
            Engine(addg, addg, method="fancy")

    def test_basic_method_ignores_registry(self):
        addg = build_addg(fig1_program("a", 16))
        engine = Engine(addg, addg, method="basic")
        assert not engine.properties("+").is_algebraic

    def test_extended_method_uses_registry(self):
        addg = build_addg(fig1_program("a", 16))
        engine = Engine(addg, addg, method="extended")
        assert engine.properties("+").associative and engine.properties("+").commutative
        assert not engine.properties("-").is_algebraic
