"""Unit tests for the checker engine on small hand-written programs.

These tests exercise individual behaviours of the synchronized traversal
(positional comparison, flattening, matching, piecewise definitions, constants,
uninterpreted operators, focused checking, tabling) on programs small enough
that the expected verdict is obvious.
"""

import pytest

from repro.checker import (
    DiagnosticKind,
    OperatorRegistry,
    check_equivalence,
    default_registry,
    empty_registry,
)
from repro.lang import parse_program


def check(source_a, source_b, **kwargs):
    return check_equivalence(parse_program(source_a), parse_program(source_b), **kwargs)


COPY = "f(int A[], int C[]) {{ int k; for(k=0;k<8;k++) s1: C[k] = {rhs}; }}"


class TestLeafLevel:
    def test_identical_programs(self):
        src = COPY.format(rhs="A[k]")
        result = check(src, src)
        assert result.equivalent

    def test_different_input_array(self):
        a = "f(int A[], int B[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = A[k]; }"
        b = "f(int A[], int B[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = B[k]; }"
        result = check(a, b)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.LEAF_MISMATCH)

    def test_different_access_function(self):
        a = COPY.format(rhs="A[k]")
        b = COPY.format(rhs="A[k + 1]")
        result = check(a, b)
        assert not result.equivalent
        mismatches = result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
        assert mismatches
        assert "A" in (mismatches[0].original_arrays + mismatches[0].transformed_arrays)

    def test_constant_leaves(self):
        a = COPY.format(rhs="A[k] + 2")
        assert check(a, a).equivalent
        b = COPY.format(rhs="A[k] + 3")
        result = check(a, b)
        assert not result.equivalent
        # The differing constants surface either as a direct constant mismatch
        # (positional comparison) or as a signature mismatch (commutative matching).
        assert result.diagnostics_of_kind(DiagnosticKind.CONSTANT_MISMATCH) or result.diagnostics_of_kind(
            DiagnosticKind.SIGNATURE_MISMATCH
        )

    def test_loop_reversal_is_equivalent(self):
        a = COPY.format(rhs="A[k]")
        b = "f(int A[], int C[]) { int k; for(k=7;k>=0;k--) s1: C[k] = A[k]; }"
        assert check(a, b).equivalent

    def test_output_domain_mismatch(self):
        a = COPY.format(rhs="A[k]")
        b = "f(int A[], int C[]) { int k; for(k=0;k<6;k++) s1: C[k] = A[k]; }"
        result = check(a, b)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.DOMAIN_MISMATCH)

    def test_missing_output(self):
        a = COPY.format(rhs="A[k]")
        b = "f(int A[], int D[]) { int k; for(k=0;k<8;k++) s1: D[k] = A[k]; }"
        result = check(a, b)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.OUTPUT_MISSING)


class TestOperators:
    def test_operator_mismatch(self):
        a = COPY.format(rhs="A[k] + A[k+1]")
        b = COPY.format(rhs="A[k] - A[k+1]")
        result = check(a, b)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.OPERATOR_MISMATCH)

    def test_commutativity_of_addition(self):
        a = COPY.format(rhs="A[k] + A[2*k]")
        b = COPY.format(rhs="A[2*k] + A[k]")
        assert check(a, b).equivalent
        # ... but not with the basic method
        assert not check(a, b, method="basic").equivalent

    def test_subtraction_is_not_commutative(self):
        a = COPY.format(rhs="A[k] - A[2*k]")
        b = COPY.format(rhs="A[2*k] - A[k]")
        assert not check(a, b).equivalent

    def test_associativity_of_addition(self):
        a = COPY.format(rhs="(A[k] + A[k+1]) + A[k+2]")
        b = COPY.format(rhs="A[k] + (A[k+1] + A[k+2])")
        assert check(a, b).equivalent
        assert not check(a, b, method="basic").equivalent

    def test_full_reassociation_and_commutation(self):
        a = COPY.format(rhs="((A[k] + A[k+1]) + A[k+2]) + A[k+3]")
        b = COPY.format(rhs="(A[k+3] + A[k+1]) + (A[k+2] + A[k])")
        assert check(a, b).equivalent

    def test_multiplication_is_algebraic_too(self):
        a = COPY.format(rhs="A[k] * (A[k+1] * A[k+2])")
        b = COPY.format(rhs="(A[k+2] * A[k]) * A[k+1]")
        assert check(a, b).equivalent

    def test_mixed_operator_chains_keep_structure(self):
        a = COPY.format(rhs="(A[k] + A[k+1]) * A[k+2]")
        b = COPY.format(rhs="A[k+2] * (A[k+1] + A[k])")
        assert check(a, b).equivalent

    def test_duplicate_operands_are_matched_correctly(self):
        a = COPY.format(rhs="(A[k] + A[k]) + A[2*k]")
        b = COPY.format(rhs="A[k] + (A[2*k] + A[k])")
        assert check(a, b).equivalent

    def test_wrong_duplicate_multiset_detected(self):
        a = COPY.format(rhs="(A[k] + A[k]) + A[2*k]")
        b = COPY.format(rhs="A[k] + (A[2*k] + A[2*k])")
        assert not check(a, b).equivalent

    def test_operand_count_mismatch(self):
        a = COPY.format(rhs="A[k] + A[k+1]")
        b = COPY.format(rhs="(A[k] + A[k+1]) + A[k+2]")
        result = check(a, b)
        assert not result.equivalent

    def test_uninterpreted_calls_must_match_exactly(self):
        a = COPY.format(rhs="foo(A[k], A[k+1])")
        assert check(a, a).equivalent
        b = COPY.format(rhs="foo(A[k+1], A[k])")
        assert not check(a, b).equivalent
        c = COPY.format(rhs="bar(A[k], A[k+1])")
        assert not check(a, c).equivalent

    def test_user_declared_commutative_function(self):
        a = COPY.format(rhs="fmin(A[k], A[k+1])")
        b = COPY.format(rhs="fmin(A[k+1], A[k])")
        registry = default_registry()
        registry.declare("fmin", commutative=True)
        assert not check(a, b).equivalent
        assert check(a, b, registry=registry).equivalent

    def test_unary_negation(self):
        a = COPY.format(rhs="-A[k]")
        assert check(a, a).equivalent
        b = COPY.format(rhs="-A[k+1]")
        assert not check(a, b).equivalent


class TestIntermediatesAndPieces:
    def test_expression_propagation(self):
        a = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: t[k] = A[k] + A[k+1];
            for (k = 0; k < 8; k++) s2: C[k] = t[k] + A[k+2];
        }
        """
        b = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) u1: C[k] = (A[k] + A[k+1]) + A[k+2]; }"
        assert check(a, b).equivalent
        assert check(a, b, method="basic").equivalent

    def test_piecewise_definition_is_recombined(self):
        a = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = A[k] + A[8-k]; }"
        b = """
        f(int A[], int C[]) {
            int k;
            for (k = 0; k < 3; k++) t1: C[k] = A[k] + A[8-k];
            for (k = 3; k < 8; k++) t2: C[k] = A[8-k] + A[k];
        }
        """
        assert check(a, b).equivalent

    def test_undefined_read_is_reported(self):
        a = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: t[k] = A[k];
            for (k = 0; k < 8; k++) s2: C[k] = t[k];
        }
        """
        b = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 6; k++) s1: t[k] = A[k];
            for (k = 0; k < 8; k++) s2: C[k] = t[k];
        }
        """
        result = check(a, b, check_preconditions=False)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.UNDEFINED_READ)

    def test_intermediate_renaming_is_transparent(self):
        a = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: t[k] = A[k] + 1;
            for (k = 0; k < 8; k++) s2: C[k] = t[k];
        }
        """
        b = """
        f(int A[], int C[]) {
            int k, other[8];
            for (k = 0; k < 8; k++) u1: other[k] = A[k] + 1;
            for (k = 0; k < 8; k++) u2: C[k] = other[k];
        }
        """
        assert check(a, b).equivalent

    def test_multiple_outputs(self):
        a = """
        f(int A[], int C[], int D[]) {
            int k;
            for (k = 0; k < 8; k++) s1: C[k] = A[k] + 1;
            for (k = 0; k < 8; k++) s2: D[k] = A[k] + 2;
        }
        """
        b = """
        f(int A[], int C[], int D[]) {
            int k;
            for (k = 0; k < 8; k++) t1: D[k] = A[k] + 2;
            for (k = 0; k < 8; k++) t2: C[k] = A[k] + 1;
        }
        """
        result = check(a, b)
        assert result.equivalent
        assert {r.array for r in result.outputs} == {"C", "D"}

    def test_focused_checking_restricts_outputs(self):
        a = """
        f(int A[], int C[], int D[]) {
            int k;
            for (k = 0; k < 8; k++) s1: C[k] = A[k] + 1;
            for (k = 0; k < 8; k++) s2: D[k] = A[k] + 2;
        }
        """
        b = """
        f(int A[], int C[], int D[]) {
            int k;
            for (k = 0; k < 8; k++) t1: C[k] = A[k] + 1;
            for (k = 0; k < 8; k++) t2: D[k] = A[k] + 3;
        }
        """
        full = check(a, b)
        assert not full.equivalent
        focused = check(a, b, outputs=["C"])
        assert focused.equivalent
        assert [r.array for r in focused.outputs] == ["C"]


class TestEngineOptions:
    def test_tabling_can_be_disabled(self):
        a = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: t[k] = A[k] + A[k+1];
            for (k = 0; k < 8; k++) s2: C[k] = t[k] + t[k];
        }
        """
        with_tabling = check(a, a)
        without_tabling = check(a, a, tabling=False)
        assert with_tabling.equivalent and without_tabling.equivalent
        assert with_tabling.stats.table_hits >= without_tabling.stats.table_hits

    def test_precondition_failure_reported(self):
        bad = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: C[k] = t[k];
            for (k = 0; k < 8; k++) s2: t[k] = A[k];
        }
        """
        good = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = A[k]; }"
        result = check(bad, good)
        assert not result.equivalent
        assert result.diagnostics_of_kind(DiagnosticKind.PRECONDITION)
        # skipping the precondition check hands the problem to the traversal
        result = check(bad, good, check_preconditions=False)
        assert isinstance(result.equivalent, bool)

    def test_intermediate_correspondence_declaration(self):
        a = """
        f(int A[], int C[]) {
            int k, t[8];
            for (k = 0; k < 8; k++) s1: t[k] = A[k] + 1;
            for (k = 0; k < 8; k++) s2: C[k] = t[k] + 2;
        }
        """
        b = """
        f(int A[], int C[]) {
            int k, u[8];
            for (k = 0; k < 8; k++) r1: u[k] = A[k] + 1;
            for (k = 0; k < 8; k++) r2: C[k] = u[k] + 2;
        }
        """
        result = check(a, b, correspondences=[("t", "u")])
        assert result.equivalent

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            check(COPY.format(rhs="A[k]"), COPY.format(rhs="A[k]"), method="bogus")
