"""Unit tests for operator property declarations."""

import pytest

from repro.checker import OperatorProperties, OperatorRegistry, default_registry, empty_registry


class TestOperatorProperties:
    def test_defaults(self):
        props = OperatorProperties()
        assert not props.associative and not props.commutative
        assert not props.is_algebraic

    def test_algebraic_flag(self):
        assert OperatorProperties(associative=True).is_algebraic
        assert OperatorProperties(commutative=True).is_algebraic
        assert OperatorProperties(True, True).is_algebraic


class TestRegistry:
    def test_default_registry_declares_plus_and_times(self):
        registry = default_registry()
        for op in ("+", "*"):
            assert registry.get(op).associative
            assert registry.get(op).commutative

    def test_default_registry_leaves_minus_uninterpreted(self):
        registry = default_registry()
        assert not registry.get("-").is_algebraic
        assert not registry.get("/").is_algebraic
        assert not registry.get("anything").is_algebraic

    def test_empty_registry(self):
        registry = empty_registry()
        assert not registry.get("+").is_algebraic

    def test_declare_custom_function(self):
        registry = default_registry()
        registry.declare("min", associative=True, commutative=True)
        assert registry.get("min").is_algebraic
        assert "min" in registry

    def test_declare_overwrites(self):
        registry = default_registry()
        registry.declare("+", associative=False, commutative=False)
        assert not registry.get("+").is_algebraic

    def test_copy_is_independent(self):
        registry = default_registry()
        copy = registry.copy()
        copy.declare("+", associative=False, commutative=False)
        assert registry.get("+").is_algebraic
        assert not copy.get("+").is_algebraic

    def test_items_and_repr(self):
        registry = default_registry()
        assert dict(registry.items())["+"].commutative
        assert "+" in repr(registry)
