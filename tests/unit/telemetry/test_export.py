"""Unit tests: exporters — Chrome trace JSON, metrics JSONL, phase aggregation."""

import json

from repro import telemetry
from repro.telemetry import (
    TRACER,
    SpanRecord,
    TelemetrySnapshot,
    aggregate_phase_seconds,
    chrome_trace,
    format_phase_summary,
    write_chrome_trace,
    write_metrics_jsonl,
)


def _span(name, category, start_us, duration_us, pid=1, tid=1, span_id=1, parent_id=None):
    return SpanRecord(
        name=name,
        category=category,
        start_us=start_us,
        duration_us=duration_us,
        pid=pid,
        tid=tid,
        span_id=span_id,
        parent_id=parent_id,
    )


class TestChromeTrace:
    def test_empty_records_yield_a_valid_empty_trace(self):
        assert chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_complete_events_carry_normalised_timestamps(self):
        records = [
            _span("late", "engine", start_us=2_000, duration_us=10, span_id=2),
            _span("early", "frontend", start_us=1_000, duration_us=500, span_id=1),
        ]
        payload = chrome_trace(records)
        events = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert events["early"]["ts"] == 0  # origin-shifted
        assert events["late"]["ts"] == 1_000
        assert events["early"]["dur"] == 500
        assert events["early"]["cat"] == "frontend"

    def test_zero_duration_spans_become_instant_events(self):
        payload = chrome_trace([_span("hit", "engine", start_us=5, duration_us=0)])
        (event,) = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "dur" not in event

    def test_one_process_name_row_per_pid(self):
        records = [
            _span("a", "service", 0, 1, pid=100, span_id=1),
            _span("b", "service", 0, 1, pid=200, span_id=2),
        ]
        payload = chrome_trace(records)
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in metadata}
        assert names[100] == "repro-eqcheck"  # first pid is the main process
        assert names[200] == "worker-200"

    def test_trace_is_json_serialisable_end_to_end(self, tmp_path):
        telemetry.enable()
        with TRACER.span("outer", "engine", note="x"):
            pass
        target = tmp_path / "trace.json"
        write_chrome_trace(str(target), TRACER.records())
        data = json.loads(target.read_text())
        assert any(e["name"] == "outer" for e in data["traceEvents"])


class TestPhaseAggregation:
    def test_nested_same_category_counts_once(self):
        records = [
            _span("traverse", "engine", 0, 1_000_000, span_id=1),
            _span("output", "engine", 0, 600_000, span_id=2, parent_id=1),
            _span("op", "presburger", 0, 250_000, span_id=3, parent_id=2),
        ]
        phases = aggregate_phase_seconds(records)
        assert phases["engine"] == 1.0  # the nested output span is not added
        assert phases["presburger"] == 0.25

    def test_grandparent_of_same_category_suppresses_too(self):
        records = [
            _span("a", "engine", 0, 1_000_000, span_id=1),
            _span("b", "presburger", 0, 500_000, span_id=2, parent_id=1),
            _span("c", "engine", 0, 100_000, span_id=3, parent_id=2),
        ]
        phases = aggregate_phase_seconds(records)
        # "c" nests (through a presburger span) inside engine span "a".
        assert phases["engine"] == 1.0

    def test_unknown_categories_are_ignored(self):
        records = [
            _span("check", "verifier", 0, 1_000_000, span_id=1),
            _span("lex", "frontend", 0, 200_000, span_id=2, parent_id=1),
        ]
        phases = aggregate_phase_seconds(records)
        assert "verifier" not in phases
        assert phases["frontend"] == 0.2

    def test_workers_with_same_span_ids_do_not_collide(self):
        # Two workers can both record span_id 1; the (pid, id) key keeps
        # their parent chains separate.
        records = [
            _span("job", "service", 0, 1_000_000, pid=10, span_id=1),
            _span("job", "service", 0, 2_000_000, pid=20, span_id=1),
            _span("traverse", "engine", 0, 400_000, pid=20, span_id=2, parent_id=1),
        ]
        phases = aggregate_phase_seconds(records)
        assert phases["service"] == 3.0
        assert phases["engine"] == 0.4


class TestSummariesAndJsonl:
    def test_format_phase_summary_lists_phases_and_counters(self):
        text = format_phase_summary(
            {"frontend": 0.5, "engine": 1.5, "presburger": 0.4},
            span_count=42,
            counters={"opcache.hits": 7},
        )
        assert "frontend" in text
        assert "engine" in text
        assert "nested inside" in text  # presburger is flagged as nested
        assert "42" in text
        assert "opcache.hits" in text

    def test_telemetry_snapshot_round_trip(self):
        snapshot = TelemetrySnapshot(
            phase_seconds={"engine": 1.0}, span_count=3, counters={"x": 1}
        )
        data = snapshot.to_dict()
        assert data == {
            "phase_seconds": {"engine": 1.0},
            "span_count": 3,
            "counters": {"x": 1},
        }
        assert "engine" in snapshot.format()

    def test_write_metrics_jsonl_appends_extra_rows(self, tmp_path):
        target = tmp_path / "metrics.jsonl"
        write_metrics_jsonl(
            str(target),
            [{"type": "counter", "name": "a", "value": 1}],
            extra_rows=[{"type": "opcache", "hits": 5}],
        )
        rows = [json.loads(line) for line in target.read_text().splitlines()]
        assert rows[0]["name"] == "a"
        assert rows[-1] == {"type": "opcache", "hits": 5}
