"""Shared fixture: every telemetry test starts and ends with a clean, disabled tracer."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
