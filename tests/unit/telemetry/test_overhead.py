"""Unit tests: disabled telemetry must be (nearly) free.

The hard <2% end-to-end budget is owned by ``benchmarks/bench_telemetry.py``;
these tests pin down the *mechanisms* that budget relies on — no allocation,
no recording, and a generous absolute bound that catches gross regressions
(an accidental lock acquisition or record append on the disabled path)
without being flaky on slow CI machines.
"""

import time

from repro import telemetry
from repro.telemetry import METRICS, TRACER
from repro.telemetry.trace import _NOOP_SPAN


class TestDisabledIsFree:
    def test_disabled_span_is_the_shared_singleton(self):
        # No allocation per call: every disabled span() is the same object.
        spans = {id(TRACER.span(f"name-{i}")) for i in range(100)}
        assert spans == {id(_NOOP_SPAN)}

    def test_disabled_paths_record_nothing(self):
        with TRACER.span("a", "engine", key=1):
            TRACER.event("b")
        METRICS.inc("c")
        METRICS.observe("d", 1.0)
        assert TRACER.records() == []
        assert METRICS.snapshot() == []

    def test_disabled_span_call_is_cheap(self):
        # 100k no-op spans in well under a second even on a loaded machine;
        # the real budget (<2% on an end-to-end check) lives in
        # benchmarks/bench_telemetry.py.
        started = time.perf_counter()
        for _ in range(100_000):
            with TRACER.span("hot", "presburger"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0, f"disabled span path took {elapsed:.3f} s for 100k calls"

    def test_disabled_guard_is_a_single_attribute(self):
        # Instrumentation sites bind the singletons at import time and guard
        # on `.enabled`; the flag must be a plain attribute, not a property
        # doing work.
        assert "enabled" not in type(TRACER).__dict__ or not isinstance(
            type(TRACER).__dict__.get("enabled"), property
        )
        assert TRACER.enabled is False
        assert METRICS.enabled is False

    def test_enable_disable_round_trip_keeps_data(self):
        telemetry.enable()
        with TRACER.span("kept"):
            pass
        telemetry.disable()
        assert [record.name for record in telemetry.spans()] == ["kept"]
        # Disabled again: nothing further records.
        with TRACER.span("dropped"):
            pass
        assert len(telemetry.spans()) == 1
