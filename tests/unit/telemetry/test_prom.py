"""Unit tests for :mod:`repro.telemetry.prom` (exposition format 0.0.4).

Every rendering is additionally run through ``tools/prom_lint.py`` — the
same regex validator CI applies to a live server's ``stats --prom`` output —
so the unit suite and the smoke job enforce one grammar.
"""

import importlib.util
import os

from repro.telemetry.metrics import Histogram
from repro.telemetry.prom import (
    CONTENT_TYPE,
    escape_help,
    escape_label_value,
    render_metric_rows,
    render_server_snapshot,
    sanitize_metric_name,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))


def _load_lint():
    spec = importlib.util.spec_from_file_location(
        "prom_lint", os.path.join(REPO_ROOT, "tools", "prom_lint.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


LINT = _load_lint()


def assert_clean(text: str) -> None:
    problems = LINT.validate(text)
    assert not problems, "\n".join(problems)


class TestEscaping:
    def test_metric_name_sanitized(self):
        assert sanitize_metric_name("cache.hit-rate") == "cache_hit_rate"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("ok_name:sub") == "ok_name:sub"

    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escapes_newline_and_backslash(self):
        assert escape_help("why\nnot\\now") == "why\\nnot\\\\now"

    def test_content_type_pins_the_format_version(self):
        assert "0.0.4" in CONTENT_TYPE


class TestRenderMetricRows:
    def test_counter_rows_render_and_validate(self):
        text = render_metric_rows(
            [{"type": "counter", "name": "frontend.parse", "value": 3}]
        )
        assert_clean(text)
        assert "# TYPE repro_frontend_parse counter" in text
        assert "repro_frontend_parse 3" in text

    def test_histogram_rows_are_cumulative(self):
        histogram = Histogram("depth")
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        text = render_metric_rows([histogram.snapshot()])
        assert_clean(text)
        lines = [line for line in text.splitlines() if "_bucket" in line]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert lines[-1].startswith('repro_depth_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "repro_depth_count 4" in text

    def test_weird_label_values_survive_the_validator(self):
        text = render_server_snapshot(
            {"solver_queries": {'om"ega\n\\': 7}}, namespace="repro_server"
        )
        assert_clean(text)
        assert '\\"' in text and "\\n" in text


class TestRenderServerSnapshot:
    SNAPSHOT = {
        "requests": 12,
        "checks_executed": 5,
        "cache_hits": 3,
        "cache_hit_rate": 0.375,
        "uptime_seconds": 4.5,
        "pid": 4242,
        "draining": False,
        "latency": {
            "request_seconds": Histogram("request_seconds").snapshot(),
        },
        "opcache": {
            "hits": 10,
            "misses": 2,
            "per_op": {"compose": {"hits": 4, "misses": 1}},
        },
        "solver_queries": {"omega": 9},
        "by_status": {"ok": 5},
        "persist": {"attached": False, "path": None, "disabled": None},
        "address": "127.0.0.1:1",  # strings are skipped, never rendered
    }

    def test_renders_and_validates(self):
        text = render_server_snapshot(self.SNAPSHOT)
        assert_clean(text)

    def test_counter_vs_gauge_classification(self):
        text = render_server_snapshot(self.SNAPSHOT)
        assert "# TYPE repro_server_requests counter" in text
        assert "# TYPE repro_server_cache_hit_rate gauge" in text
        assert "# TYPE repro_server_uptime_seconds gauge" in text

    def test_labelled_expansion(self):
        text = render_server_snapshot(self.SNAPSHOT)
        assert 'repro_server_solver_queries{kind="omega"} 9' in text
        assert 'repro_server_opcache_per_op_hits{op="compose"} 4' in text
        assert 'repro_server_by_status{status="ok"} 5' in text

    def test_booleans_render_as_01(self):
        text = render_server_snapshot(self.SNAPSHOT)
        assert "repro_server_draining 0" in text
        assert "repro_server_persist_attached 0" in text

    def test_strings_and_nones_are_skipped(self):
        text = render_server_snapshot(self.SNAPSHOT)
        assert "address" not in text
        assert "persist_path" not in text

    def test_empty_histogram_still_valid(self):
        text = render_server_snapshot(
            {"latency": {"request_seconds": Histogram("request_seconds").snapshot()}}
        )
        assert_clean(text)
        assert 'repro_server_latency_request_seconds_bucket{le="+Inf"} 0' in text

    def test_metric_rows_ride_along(self):
        text = render_server_snapshot(
            self.SNAPSHOT,
            metric_rows=[{"type": "counter", "name": "engine.compare", "value": 6}],
        )
        assert_clean(text)
        assert "repro_engine_compare 6" in text


class TestValidatorItself:
    # The gate must actually bite — feed it the classic breakages.
    def test_rejects_noncumulative_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        assert LINT.validate(bad)

    def test_rejects_missing_inf_bucket(self):
        bad = '# TYPE h histogram\nh_bucket{le="1"} 1\nh_sum 1\nh_count 1\n'
        assert any("+Inf" in problem for problem in LINT.validate(bad))

    def test_rejects_bad_metric_name(self):
        assert LINT.validate("bad-name 1\n")

    def test_rejects_unescaped_label_quote(self):
        assert LINT.validate('m{l="a"b"} 1\n')

    def test_rejects_type_after_sample(self):
        assert LINT.validate("m 1\n# TYPE m counter\n")

    def test_accepts_special_values(self):
        assert not LINT.validate("m 1\nn +Inf\no NaN\np -3e-5\n")
