"""Unit tests: the metrics registry — counters, gauges, histograms, merging."""

from repro import telemetry
from repro.telemetry import METRICS, MetricsRegistry, delta_counters


class TestRegistryBasics:
    def test_disabled_mutators_are_noops(self):
        METRICS.inc("a")
        METRICS.set("b", 3.0)
        METRICS.observe("c", 1.0)
        assert METRICS.snapshot() == []

    def test_counter_increments(self):
        telemetry.enable()
        METRICS.inc("checks")
        METRICS.inc("checks", 4)
        assert METRICS.counters() == {"checks": 5}

    def test_gauge_last_value_wins(self):
        telemetry.enable()
        METRICS.set("population", 10)
        METRICS.set("population", 3)
        (entry,) = METRICS.snapshot()
        assert entry == {"type": "gauge", "name": "population", "value": 3}

    def test_histogram_buckets_and_moments(self):
        telemetry.enable()
        for value in (0.5, 1.0, 3.0, 1000.0):
            METRICS.observe("sizes", value)
        (entry,) = METRICS.snapshot()
        assert entry["count"] == 4
        assert entry["min"] == 0.5
        assert entry["max"] == 1000.0
        assert entry["mean"] == (0.5 + 1.0 + 3.0 + 1000.0) / 4
        # |v| <= 1 -> bucket 0; 3.0 -> bucket 2 (2 < 3 <= 4); 1000 -> bucket 10.
        assert entry["buckets"] == {"0": 2, "2": 1, "10": 1}

    def test_snapshot_is_sorted_by_name(self):
        telemetry.enable()
        METRICS.inc("zeta")
        METRICS.inc("alpha")
        names = [entry["name"] for entry in METRICS.snapshot()]
        assert names == ["alpha", "zeta"]


class TestMerging:
    def test_merge_adds_counters_and_maxes_gauges(self):
        local = MetricsRegistry()
        local.enabled = True
        local.inc("jobs", 2)
        local.set("high_water", 5)
        remote = MetricsRegistry()
        remote.enabled = True
        remote.inc("jobs", 3)
        remote.set("high_water", 9)
        remote.observe("latency", 4.0)
        local.merge(remote.snapshot())
        assert local.counters() == {"jobs": 5}
        by_name = {entry["name"]: entry for entry in local.snapshot()}
        assert by_name["high_water"]["value"] == 9
        assert by_name["latency"]["count"] == 1

    def test_merge_combines_histogram_bounds_and_buckets(self):
        left = MetricsRegistry()
        left.enabled = True
        left.observe("latency", 1.0)
        right = MetricsRegistry()
        right.enabled = True
        right.observe("latency", 100.0)
        left.merge(right.snapshot())
        (entry,) = left.snapshot()
        assert entry["count"] == 2
        assert entry["min"] == 1.0
        assert entry["max"] == 100.0

    def test_merge_works_into_a_disabled_registry(self):
        # The parent may have been disabled between the drain and the merge;
        # the worker's increments must not be lost.
        target = MetricsRegistry()
        source = MetricsRegistry()
        source.enabled = True
        source.inc("jobs", 7)
        target.merge(source.snapshot())
        assert target.counters() == {"jobs": 7}


class TestDeltas:
    def test_delta_counters_reports_only_increments(self):
        earlier = {"a": 2, "b": 5}
        later = {"a": 6, "b": 5, "c": 1}
        assert delta_counters(later, earlier) == {"a": 4, "c": 1}


class TestHistogramEdgeCases:
    def _histogram(self):
        from repro.telemetry.metrics import Histogram

        return Histogram("h")

    def test_empty_snapshot(self):
        snapshot = self._histogram().snapshot()
        assert snapshot["count"] == 0
        assert snapshot["sum"] == 0
        assert snapshot["buckets"] == {}
        assert snapshot["min"] is None and snapshot["max"] is None
        assert snapshot["mean"] == 0.0

    def test_single_sample(self):
        histogram = self._histogram()
        histogram.observe(3.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["min"] == snapshot["max"] == snapshot["mean"] == 3.0
        # 2 < 3 <= 4 = 2**2: magnitude bucket 2
        assert snapshot["buckets"] == {"2": 1}

    def test_all_equal_samples_share_one_bucket(self):
        histogram = self._histogram()
        for _ in range(10):
            histogram.observe(0.25)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"0": 10}
        assert snapshot["mean"] == 0.25

    def test_overflow_clamps_to_max_bucket(self):
        from repro.telemetry.metrics import Histogram

        histogram = self._histogram()
        histogram.observe(2.0 ** 80)  # way past 2**MAX_BUCKET
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {str(Histogram.MAX_BUCKET): 1}

    def test_boundary_values_land_low(self):
        # bucket k holds 2**(k-1) < |v| <= 2**k: an exact power of two stays
        # in its own bucket, just past it moves up.
        histogram = self._histogram()
        histogram.observe(2.0)
        histogram.observe(2.000001)
        snapshot = histogram.snapshot()
        assert snapshot["buckets"] == {"1": 1, "2": 1}


class TestCounterThreadSafety:
    def test_concurrent_increments_are_exact(self):
        # The server increments counters from worker threads while the event
        # loop reads them; a bare `+=` loses updates under contention.
        import threading

        from repro.telemetry.metrics import Counter

        counter = Counter("hammered")
        threads = 8
        per_thread = 2500
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == threads * per_thread
