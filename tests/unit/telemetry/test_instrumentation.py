"""Integration-level unit tests: the instrumented stack under active tracing.

Covers the tentpole wiring end to end at unit-test scale: frontend and
engine spans during a ``Verifier.check``, the ``on_telemetry`` observer
milestone, ``CheckStats.phase_seconds``, and the cross-process span merge
from ``BatchExecutor`` pool workers.
"""

import os

from repro import telemetry
from repro.telemetry import METRICS, TRACER
from repro.verifier import CallbackObserver, Verifier
from repro.service import BatchExecutor, VerificationJob

ORIGINAL = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k] + A[k+1];
}
"""

TRANSFORMED = """
#define N 8
f(int A[], int B[])
{
    int k;
    for (k = 0; k < N; k++)
s1:     B[k] = A[k+1] + A[k];
}
"""


class TestVerifierTelemetry:
    def test_check_emits_nested_frontend_and_engine_spans(self):
        telemetry.enable()
        result = Verifier().check(ORIGINAL, TRANSFORMED)
        assert result.equivalent
        names = {record.name for record in telemetry.spans()}
        assert "verifier.check" in names
        assert "frontend.parse_program" in names
        assert "frontend.lex" in names
        assert "frontend.defuse" in names
        assert "frontend.extract" in names
        assert "engine.traverse" in names
        assert "engine.output" in names
        by_name = {record.name: record for record in telemetry.spans()}
        check_id = by_name["verifier.check"].span_id
        assert by_name["engine.traverse"].parent_id == check_id

    def test_phase_seconds_filled_under_tracing(self):
        telemetry.enable()
        result = Verifier().check(ORIGINAL, TRANSFORMED)
        assert set(result.stats.phase_seconds) >= {"frontend", "engine"}
        assert all(value >= 0 for value in result.stats.phase_seconds.values())

    def test_phase_seconds_empty_when_disabled(self):
        result = Verifier().check(ORIGINAL, TRANSFORMED)
        assert result.stats.phase_seconds == {}

    def test_on_telemetry_fires_before_on_stats_under_tracing(self):
        telemetry.enable()
        milestones = []
        observer = CallbackObserver(
            on_stats=lambda stats: milestones.append(("stats", stats)),
            on_telemetry=lambda snapshot: milestones.append(("telemetry", snapshot)),
        )
        Verifier().check(ORIGINAL, TRANSFORMED, observer=observer)
        kinds = [kind for kind, _ in milestones]
        assert kinds == ["telemetry", "stats"]
        snapshot = milestones[0][1]
        assert snapshot.span_count > 0
        assert "engine" in snapshot.phase_seconds

    def test_on_telemetry_not_fired_when_disabled(self):
        snapshots = []
        observer = CallbackObserver(on_telemetry=snapshots.append)
        Verifier().check(ORIGINAL, TRANSFORMED, observer=observer)
        assert snapshots == []

    def test_metrics_counters_flow_into_the_snapshot(self):
        telemetry.enable()
        snapshots = []
        observer = CallbackObserver(on_telemetry=snapshots.append)
        Verifier().check(ORIGINAL, TRANSFORMED, observer=observer)
        (snapshot,) = snapshots
        # The engine always performs FM eliminations on this pair.
        assert snapshot.counters.get("presburger.fm_eliminations", 0) > 0

    def test_check_addgs_also_traces(self):
        from repro.addg import build_addg
        from repro.lang import parse_program

        telemetry.enable()
        original = build_addg(parse_program(ORIGINAL))
        transformed = build_addg(parse_program(TRANSFORMED))
        telemetry.reset()  # keep only the check's spans
        result = Verifier().check_addgs(original, transformed)
        assert result.equivalent
        names = {record.name for record in telemetry.spans()}
        assert "verifier.check_addgs" in names
        assert result.stats.phase_seconds.get("engine", 0) >= 0


def _jobs(count):
    return [
        VerificationJob(
            name=f"pair-{index}",
            original_source=ORIGINAL,
            transformed_source=TRANSFORMED.replace("#define N 8", f"#define N {8 + index}"),
            expected_equivalent=True,
        )
        for index in range(count)
    ]


class TestCrossProcessMerge:
    def test_pool_workers_ship_spans_home(self):
        telemetry.enable()
        results = BatchExecutor(cache=None, workers=2).run(_jobs(3))
        assert all(outcome.status == "ok" for outcome in results)
        spans = telemetry.spans()
        job_spans = [record for record in spans if record.name == "service.job"]
        assert len(job_spans) == 3
        worker_pids = {record.pid for record in job_spans}
        assert os.getpid() not in worker_pids  # the jobs ran in workers
        # The shipped telemetry must be consumed, not serialised onward.
        assert all(outcome.telemetry is None for outcome in results)
        # Worker metrics merged into the parent registry.
        assert METRICS.counters().get("presburger.fm_eliminations", 0) > 0

    def test_worker_spans_keep_their_own_track(self):
        telemetry.enable()
        BatchExecutor(cache=None, workers=2).run(_jobs(2))
        payload = telemetry.chrome_trace(telemetry.spans())
        pids = {event["pid"] for event in payload["traceEvents"]}
        assert len(pids) >= 2  # at least one worker track beside the parent

    def test_serial_executor_records_in_process(self):
        telemetry.enable()
        results = BatchExecutor(cache=None, workers=1).run(_jobs(2))
        assert all(outcome.status == "ok" for outcome in results)
        job_spans = [r for r in telemetry.spans() if r.name == "service.job"]
        assert len(job_spans) == 2
        assert {record.pid for record in job_spans} == {os.getpid()}

    def test_untraced_batch_ships_no_telemetry(self):
        results = BatchExecutor(cache=None, workers=2).run(_jobs(2))
        assert all(outcome.status == "ok" for outcome in results)
        assert telemetry.spans() == []
