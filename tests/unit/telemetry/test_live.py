"""Unit tests for :mod:`repro.telemetry.live`.

The structured request log (one JSON object per line, level filtering,
size-based rotation, degrade-to-stderr on IO failure), the bounded
slow-request ring, and the thread-local request-id scope the server uses to
tag verifier spans.
"""

import json
import os
import threading

import pytest

from repro.telemetry.live import (
    DEFAULT_EVENT_LEVELS,
    EVENT_KINDS,
    LOG_LEVELS,
    RequestLogger,
    SlowRequestRing,
    current_request,
    iter_jsonl,
    request_scope,
    set_current_request,
)


class TestRequestLogger:
    def test_emits_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="debug")
        logger.emit("request_accepted", request=1, method="check", fingerprint="abc")
        logger.emit("request_completed", request=1, verdict=True, wall_seconds=0.25)
        logger.close()
        rows = list(iter_jsonl(path))
        assert [row["event"] for row in rows] == ["request_accepted", "request_completed"]
        assert rows[0]["fingerprint"] == "abc"
        assert rows[1]["verdict"] is True
        # every row carries its level and a timestamp
        assert all(row["level"] in LOG_LEVELS for row in rows)
        assert all(isinstance(row["ts"], float) for row in rows)

    def test_level_filter_drops_debug_events_at_info(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="info")
        # the info-level log is completion-based: lifecycle chatter
        # (connect, accepted) is debug detail
        assert DEFAULT_EVENT_LEVELS["connect"] == "debug"
        assert DEFAULT_EVENT_LEVELS["request_accepted"] == "debug"
        logger.emit("connect", peer="x")  # below the sink level
        logger.emit("request_accepted", request=1)  # likewise
        logger.emit("request_completed", request=1)
        logger.close()
        rows = list(iter_jsonl(path))
        assert [row["event"] for row in rows] == ["request_completed"]
        assert logger.events_written == 1
        assert logger.events_dropped == 2

    def test_explicit_level_overrides_the_event_default(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="warning")
        logger.emit("request_completed", request=1)  # info by default: dropped
        logger.emit("request_completed", request=2, level="error")  # promoted: kept
        logger.close()
        rows = list(iter_jsonl(path))
        assert [row["request"] for row in rows] == [2]
        assert rows[0]["level"] == "error"

    def test_invalid_level_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RequestLogger(str(tmp_path / "x.jsonl"), level="loud")

    def test_none_valued_fields_are_dropped(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path)
        logger.emit("request_completed", request=1, verdict=None, error=None)
        logger.emit(
            "request_completed",
            request=2,
            error='boom: "quoted"\nwith a newline',
            elapsed_seconds=0.125,
            unicode_name="kérnel",
        )
        logger.close()
        first, second = iter_jsonl(path)
        assert "verdict" not in first and "error" not in first
        # awkward values (quotes, newlines, non-ASCII) round-trip intact
        assert second["error"] == 'boom: "quoted"\nwith a newline'
        assert second["elapsed_seconds"] == 0.125
        assert second["unicode_name"] == "kérnel"

    def test_rotation_keeps_one_predecessor(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="debug", max_bytes=1024)  # the enforced minimum
        for index in range(64):
            logger.emit("request_accepted", request=index, padding="x" * 64)
        logger.close()
        assert os.path.exists(path + ".1")
        # both generations hold valid JSONL and nothing was lost beyond the
        # rotated-away generations
        current = list(iter_jsonl(path))
        previous = list(iter_jsonl(path + ".1"))
        assert current and previous
        assert logger.events_written == 64
        # the retained tail is contiguous and ends with the last event
        retained = previous + current
        requests = [row["request"] for row in retained]
        assert requests == list(range(requests[0], 64))

    def test_degrades_to_stderr_on_io_error(self, tmp_path, capsys):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="debug")
        logger.emit("request_accepted", request=1)
        assert logger.flush()
        # Simulate the disk going away mid-flight: further writes must not
        # raise, and events continue to stderr.
        logger._handle.close()
        logger.emit("request_accepted", request=2)
        assert logger.flush()
        assert logger.degraded
        logger.emit("request_accepted", request=3)
        logger.close()
        err = capsys.readouterr().err
        assert '"request": 2' in err.replace('"request":2', '"request": 2')
        assert '"request": 3' in err.replace('"request":3', '"request": 3')
        stats = logger.stats()
        assert stats["degraded"] is True

    def test_stats_shape(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="debug")
        logger.emit("connect", peer="p")
        stats = logger.stats()
        assert stats == {
            "path": path,
            "level": "debug",
            "degraded": False,
            "events_written": 1,
            "events_dropped": 0,
        }
        logger.close()

    def test_event_kinds_have_default_levels(self):
        assert set(EVENT_KINDS) == set(DEFAULT_EVENT_LEVELS)

    def test_flush_returns_with_everything_on_disk(self, tmp_path):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path, level="debug")
        for request in range(50):
            logger.emit("request_accepted", request=request)
        assert logger.flush()
        # Everything emitted before flush() returned is on disk already,
        # without closing the logger.
        rows = list(iter_jsonl(path))
        assert [row["request"] for row in rows] == list(range(50))
        logger.close()

    def test_emit_after_close_degrades_to_stderr(self, tmp_path, capsys):
        path = str(tmp_path / "req.jsonl")
        logger = RequestLogger(path)
        logger.close()
        # A straggler event during teardown must neither raise nor vanish.
        logger.emit("request_completed", peer="late")
        err = capsys.readouterr().err
        assert '"late"' in err
        assert logger.stats()["events_written"] == 1


class TestSlowRequestRing:
    def test_bounded_and_fifo(self):
        ring = SlowRequestRing(capacity=3)
        for index in range(5):
            ring.add({"request": index})
        assert len(ring) == 3
        assert [record["request"] for record in ring.snapshot()] == [2, 3, 4]
        assert ring.captured == 5  # lifetime count survives eviction

    def test_snapshot_is_a_copy(self):
        ring = SlowRequestRing(capacity=2)
        ring.add({"request": 0})
        snapshot = ring.snapshot()
        snapshot.append({"request": "bogus"})
        assert len(ring.snapshot()) == 1

    def test_clear(self):
        ring = SlowRequestRing(capacity=2)
        ring.add({"request": 0})
        ring.clear()
        assert len(ring) == 0 and ring.snapshot() == []


class TestRequestScope:
    def test_scope_sets_and_restores(self):
        assert current_request() is None
        with request_scope(7):
            assert current_request() == 7
            with request_scope(8):
                assert current_request() == 8
            assert current_request() == 7
        assert current_request() is None

    def test_scope_is_thread_local(self):
        seen = {}

        def worker():
            seen["other"] = current_request()

        with request_scope("mine"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_set_current_request_direct(self):
        set_current_request("abc")
        try:
            assert current_request() == "abc"
        finally:
            set_current_request(None)


def test_iter_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "rows.jsonl"
    path.write_text('{"a": 1}\n\n{"b": 2}\n', encoding="utf-8")
    assert list(iter_jsonl(str(path))) == [{"a": 1}, {"b": 2}]


def test_log_line_is_compact_json(tmp_path):
    # One event must stay one line: embedded newlines in values are escaped
    # by json.dumps, keeping the file greppable and streamable.
    path = str(tmp_path / "req.jsonl")
    logger = RequestLogger(path)
    logger.emit("request_rejected", request=1, error="line one\nline two")
    logger.close()
    text = open(path, encoding="utf-8").read()
    assert text.count("\n") == 1
    assert json.loads(text)["error"] == "line one\nline two"
