"""Unit tests: the span tracer — nesting, threads, serialization, no-op mode."""

import os
import threading

import pytest

from repro import telemetry
from repro.telemetry import TRACER, SpanRecord
from repro.telemetry.trace import _NOOP_SPAN


def _by_name(records):
    return {record.name: record for record in records}


class TestSpanNesting:
    def test_nested_spans_link_to_their_parents(self):
        telemetry.enable()
        with TRACER.span("outer", "engine"):
            with TRACER.span("middle", "engine"):
                with TRACER.span("inner", "presburger"):
                    pass
        spans = _by_name(TRACER.records())
        assert spans["outer"].parent_id is None
        assert spans["middle"].parent_id == spans["outer"].span_id
        assert spans["inner"].parent_id == spans["middle"].span_id

    def test_siblings_share_a_parent(self):
        telemetry.enable()
        with TRACER.span("parent"):
            with TRACER.span("first"):
                pass
            with TRACER.span("second"):
                pass
        spans = _by_name(TRACER.records())
        assert spans["first"].parent_id == spans["parent"].span_id
        assert spans["second"].parent_id == spans["parent"].span_id

    def test_span_records_pid_tid_and_duration(self):
        telemetry.enable()
        with TRACER.span("work", "engine", items=3):
            pass
        (record,) = TRACER.records()
        assert record.pid == os.getpid()
        assert record.tid == threading.get_ident()
        assert record.duration_us >= 0
        assert record.args == {"items": 3}
        assert record.category == "engine"

    def test_exception_annotates_and_still_records(self):
        telemetry.enable()
        with pytest.raises(ValueError):
            with TRACER.span("fails"):
                raise ValueError("boom")
        (record,) = TRACER.records()
        assert record.args["error"] == "ValueError"
        # The stack must be unwound: the next span is a root again.
        with TRACER.span("after"):
            pass
        assert _by_name(TRACER.records())["after"].parent_id is None

    def test_set_attaches_args_on_the_live_span(self):
        telemetry.enable()
        with TRACER.span("job") as span:
            span.set(status="ok", jobs=2)
        (record,) = TRACER.records()
        assert record.args == {"status": "ok", "jobs": 2}

    def test_event_is_an_instant_child_of_the_open_span(self):
        telemetry.enable()
        with TRACER.span("outer"):
            TRACER.event("hit", "engine", key=1)
        spans = _by_name(TRACER.records())
        assert spans["hit"].duration_us == 0
        assert spans["hit"].parent_id == spans["outer"].span_id

    def test_spans_on_different_threads_do_not_nest_across_threads(self):
        telemetry.enable()
        ready = threading.Barrier(2)

        def worker(name):
            ready.wait()
            with TRACER.span(name):
                pass

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)]
        with TRACER.span("main-span"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        spans = _by_name(TRACER.records())
        # The worker spans opened while "main-span" was live on the main
        # thread, but their stacks are thread-local: they are roots.
        assert spans["t0"].parent_id is None
        assert spans["t1"].parent_id is None
        assert spans["t0"].tid != spans["main-span"].tid


class TestDisabledMode:
    def test_span_returns_the_shared_noop_object(self):
        assert TRACER.span("anything") is _NOOP_SPAN
        assert TRACER.span("other", "cat", x=1) is _NOOP_SPAN

    def test_noop_span_supports_the_full_protocol(self):
        with TRACER.span("ignored") as span:
            span.set(key="value")
        TRACER.event("ignored")
        assert TRACER.records() == []

    def test_decorator_passes_through_when_disabled(self):
        calls = []

        @telemetry.traced(category="frontend")
        def work(x):
            calls.append(x)
            return x * 2

        assert work(21) == 42
        assert calls == [21]
        assert TRACER.records() == []

    def test_decorator_records_when_enabled(self):
        @telemetry.traced("custom-name", category="frontend")
        def work():
            return 7

        telemetry.enable()
        assert work() == 7
        (record,) = TRACER.records()
        assert record.name == "custom-name"
        assert record.category == "frontend"


class TestCollection:
    def test_mark_and_records_since(self):
        telemetry.enable()
        with TRACER.span("before"):
            pass
        mark = TRACER.mark()
        with TRACER.span("after"):
            pass
        since = TRACER.records_since(mark)
        assert [record.name for record in since] == ["after"]
        assert len(TRACER.records()) == 2  # buffer unchanged

    def test_drain_since_removes_the_tail(self):
        telemetry.enable()
        with TRACER.span("keep"):
            pass
        mark = TRACER.mark()
        with TRACER.span("ship"):
            pass
        drained = TRACER.drain_since(mark)
        assert [record.name for record in drained] == ["ship"]
        assert [record.name for record in TRACER.records()] == ["keep"]

    def test_serialization_round_trip_preserves_identity(self):
        telemetry.enable()
        with TRACER.span("outer", "service"):
            with TRACER.span("inner", "engine"):
                pass
        originals = TRACER.records()
        restored = [SpanRecord.from_dict(record.to_dict()) for record in originals]
        for original, copy in zip(originals, restored):
            assert copy.name == original.name
            assert copy.pid == original.pid
            assert copy.tid == original.tid
            assert copy.span_id == original.span_id
            assert copy.parent_id == original.parent_id
            assert copy.start_us == original.start_us
            assert copy.duration_us == original.duration_us

    def test_ingest_merges_foreign_spans_verbatim(self):
        telemetry.enable()
        foreign = SpanRecord(
            name="worker-span",
            category="service",
            start_us=123,
            duration_us=45,
            pid=99999,
            tid=7,
            span_id=1,
            parent_id=None,
        )
        count = telemetry.ingest_spans([foreign.to_dict()])
        assert count == 1
        (record,) = TRACER.records()
        assert record.pid == 99999  # the worker's pid survives the merge
        assert record.tid == 7
        assert record.name == "worker-span"

    def test_clear_drops_records_and_restamps_pid(self):
        telemetry.enable()
        with TRACER.span("gone"):
            pass
        TRACER.clear()
        assert TRACER.records() == []
        assert TRACER.pid == os.getpid()
