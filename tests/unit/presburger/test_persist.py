"""Unit tests for the persistent operation cache (disk tier + intern store).

Covers the store in isolation (roundtrips, fingerprint wipes, corruption
tolerance, the op whitelist) and its integration with the in-memory cache
(disk counters, promotion, env attachment, cross-process warm starts).
All failures must degrade to cache misses — persistence can never change a
verdict, only how fast it is reached.
"""

import os
import sqlite3
import subprocess
import sys

import pytest

from repro.presburger import opcache, parse_map, parse_set
from repro.presburger import persist
from repro.presburger.conjunct import Conjunct
from repro.presburger.persist import (
    CACHE_FORMAT_VERSION,
    PERSISTABLE_OPS,
    PersistentStore,
    store_fingerprint,
)


@pytest.fixture
def store(tmp_path):
    st = PersistentStore(str(tmp_path / "cache"))
    yield st
    st.close()


@pytest.fixture
def attached(tmp_path):
    st = opcache.attach_persistent(str(tmp_path / "cache"))
    opcache.reset()
    yield st
    opcache.detach_persistent()
    opcache.reset()


def sample_conjunct():
    return parse_set("{ [i] : exists a : i = 2a and 0 <= i < 16 }").conjuncts[0]


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            42,
            -7,
            "infeasible",
            ("a", 1, None),
        ],
    )
    def test_primitives(self, store, value):
        assert store.save("feasible", ("k", 1), value)
        assert store.load("feasible", ("k", 1)) == value

    def test_none_is_not_a_miss(self, store):
        assert store.load("feasible", "absent") is store.MISS
        store.save("feasible", "present", None)
        assert store.load("feasible", "present") is None

    def test_conjunct_roundtrip_interns(self, store):
        conjunct = sample_conjunct()
        assert store.save("simplify", conjunct, conjunct)
        loaded = store.load("simplify", conjunct)
        assert loaded == conjunct
        for vector in loaded.eqs + loaded.ineqs:
            assert opcache.intern_vector(vector) is vector
        assert opcache.intern_conjunct(loaded) is loaded

    def test_set_roundtrip(self, store):
        value = parse_set("{ [i] : 0 <= i < 4 ; [i] : 6 <= i < 10 }")
        store.save("us", ("union", 1), value)
        loaded = store.load("us", ("union", 1))
        assert loaded == value
        assert loaded.names == value.names
        assert isinstance(loaded.conjuncts, tuple)

    def test_map_roundtrip(self, store):
        value = parse_map("{ [i] -> [j] : j = i + 1 and 0 <= i < 8 }")
        store.save("compose", ("m", 2), value)
        loaded = store.load("compose", ("m", 2))
        assert loaded == value
        assert tuple(loaded.in_names) == tuple(value.in_names)
        assert tuple(loaded.out_names) == tuple(value.out_names)

    def test_conjunct_keys_use_structural_identity(self, store):
        conjunct = sample_conjunct()
        twin = Conjunct(conjunct.n_vars, conjunct.n_div, conjunct.eqs, conjunct.ineqs)
        store.save("feasible", conjunct, True)
        assert store.load("feasible", twin) is True


class TestGating:
    def test_unknown_ops_are_not_persisted(self, store):
        assert "internal.debug" not in PERSISTABLE_OPS
        assert not store.save("internal.debug", "k", 1)
        assert store.load("internal.debug", "k") is store.MISS
        assert store.entry_count() == 0

    def test_unencodable_value_is_skipped(self, store):
        assert not store.save("simplify", "k", object())
        assert store.load("simplify", "k") is store.MISS

    def test_unencodable_key_is_a_miss(self, store):
        assert not store.save("simplify", object(), 1)
        assert store.load("simplify", object()) is store.MISS


class TestLifecycle:
    def test_fingerprint_mismatch_wipes(self, tmp_path):
        path = str(tmp_path / "cache")
        first = PersistentStore(path)
        first.save("feasible", "k", True)
        assert first.entry_count() == 1
        first.close()

        db = os.path.join(path, "opcache.sqlite")
        conn = sqlite3.connect(db)
        conn.execute(
            "UPDATE meta SET value = 'format-v0;alien' WHERE key = 'fingerprint'"
        )
        conn.commit()
        conn.close()

        second = PersistentStore(path)
        assert second.entry_count() == 0
        assert second.load("feasible", "k") is second.MISS
        second.close()

    def test_matching_fingerprint_preserves(self, tmp_path):
        path = str(tmp_path / "cache")
        first = PersistentStore(path)
        first.save("feasible", "k", True)
        first.close()
        second = PersistentStore(path)
        assert second.load("feasible", "k") is True
        second.close()

    def test_corrupt_file_restarts_empty(self, tmp_path):
        path = str(tmp_path / "cache")
        os.makedirs(path)
        with open(os.path.join(path, "opcache.sqlite"), "wb") as fh:
            fh.write(b"this is not a sqlite database at all")
        st = PersistentStore(path)
        assert not st.disabled
        assert st.save("feasible", "k", False)
        assert st.load("feasible", "k") is False
        st.close()

    def test_torn_row_is_dropped(self, store):
        store.save("feasible", "k", True)
        digest = persist.encode_key("feasible", "k")
        with store._lock:
            store._conn.execute(
                "UPDATE ops SET value = ? WHERE key = ?", (b"\x80garbage", digest)
            )
        assert store.load("feasible", "k") is store.MISS
        assert store.entry_count() == 0

    def test_closed_store_is_disabled(self, store):
        store.close()
        assert store.disabled
        assert not store.save("feasible", "k", True)
        assert store.load("feasible", "k") is store.MISS
        assert store.entry_count() == 0

    def test_reopened_shares_the_directory(self, store):
        store.save("feasible", "k", 7)
        clone = store.reopened()
        assert clone.path == store.path
        assert clone.load("feasible", "k") == 7
        clone.close()

    def test_fingerprint_content(self):
        fp = store_fingerprint()
        assert f"format-v{CACHE_FORMAT_VERSION}" in fp
        assert f"py{sys.version_info[0]}.{sys.version_info[1]}" in fp
        assert "kernel-v" in fp


class TestCacheIntegration:
    def test_disk_write_then_cross_reset_hit(self, attached):
        conjunct = sample_conjunct()
        opcache.memoized("feasible", conjunct, lambda: True)
        stats = opcache.stats()
        assert stats.disk_writes >= 1
        assert stats.misses >= 1

        opcache.reset()  # drop the in-memory tier, keep the disk tier
        sentinel = []

        def recompute():
            sentinel.append(True)
            return True

        assert opcache.memoized("feasible", conjunct, recompute) is True
        assert sentinel == []  # served from disk, not recomputed
        stats = opcache.stats()
        assert stats.disk_hits == 1
        assert stats.hits == 1  # a disk hit is an ordinary hit too
        assert stats.misses == 0

    def test_disk_hit_promotes_to_memory(self, attached):
        conjunct = sample_conjunct()
        opcache.memoized("feasible", conjunct, lambda: False)
        opcache.reset()
        opcache.memoized("feasible", conjunct, lambda: False)
        first = opcache.stats().disk_hits
        opcache.memoized("feasible", conjunct, lambda: False)
        assert opcache.stats().disk_hits == first  # second hit was memory-only

    def test_nonpersistable_ops_stay_memory_only(self, attached):
        opcache.memoized("transient.op", "k", lambda: 3)
        stats = opcache.stats()
        assert stats.disk_writes == 0
        assert attached.entry_count() == 0

    def test_detach_stops_writing(self, tmp_path):
        store = opcache.attach_persistent(str(tmp_path / "cache"))
        opcache.reset()
        opcache.detach_persistent()
        opcache.memoized("feasible", "k", lambda: True)
        assert store.entry_count() == 0
        assert opcache.persistent_store() is None

    def test_reattach_uses_fresh_connection(self, attached):
        opcache.memoized("feasible", "k", lambda: True)
        before = opcache.persistent_store()
        opcache.reattach_persistent()
        after = opcache.persistent_store()
        assert after is not None
        assert after is not before
        assert after.path == before.path
        assert after.load("feasible", "k") is True

    def test_env_attachment(self, tmp_path):
        path = str(tmp_path / "envcache")
        code = (
            "from repro.presburger import opcache\n"
            "store = opcache.persistent_store()\n"
            "assert store is not None, 'env attachment failed'\n"
            "opcache.memoized('feasible', 'warm', lambda: True)\n"
            "assert store.entry_count() == 1\n"
        )
        env = dict(os.environ, REPRO_OPCACHE_PERSIST_DIR=path)
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd="/root/repo",
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_cross_process_warm_start(self, tmp_path):
        """A second process over the same persist dir must serve the first
        process's results from disk without recomputing."""
        path = str(tmp_path / "shared")
        workload = (
            "from repro.presburger import opcache, parse_set\n"
            "opcache.attach_persistent({path!r})\n"
            "a = parse_set('{{ [i] : exists d : i = 2d and 0 <= i < 32 }}')\n"
            "b = parse_set('{{ [i] : 0 <= i < 32 }}')\n"
            "assert a.is_subset(b) and not b.is_subset(a)\n"
            "stats = opcache.stats()\n"
            "print(stats.disk_hits, stats.disk_writes)\n"
        ).format(path=path)
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_OPCACHE_PERSIST_DIR", None)

        cold = subprocess.run(
            [sys.executable, "-c", workload], env=env, cwd="/root/repo",
            capture_output=True, text=True,
        )
        assert cold.returncode == 0, cold.stderr
        cold_hits, cold_writes = map(int, cold.stdout.split())
        assert cold_writes > 0
        assert cold_hits == 0

        warm = subprocess.run(
            [sys.executable, "-c", workload], env=env, cwd="/root/repo",
            capture_output=True, text=True,
        )
        assert warm.returncode == 0, warm.stderr
        warm_hits, warm_writes = map(int, warm.stdout.split())
        assert warm_hits > 0
        assert warm_writes == 0
