"""Differential tests for the flat-matrix constraint kernel.

The kernel (:mod:`repro.presburger.kernel`) is an execution strategy, not a
semantics: every operation must produce results bit-for-bit identical to
the original object-at-a-time code.  These tests sweep the FM /stride/
dark-shadow corpus from the solver differential suite under both modes and
assert exact equality — of normal forms, elimination results, simplified
sets, set-algebra verdicts and feasibility.

They also gate the two interning invariants this PR fixed:

* every vector of every normalized conjunct is the pooled instance
  (``intern_vector(v) is v``) — the leak in ``normalize()``'s
  tightest-inequality rebuild and opposite-pair promotion silently broke
  hash-consing for any set that passed through those branches;
* ``normalize`` is idempotent object-identically on kernel output (the
  ``_normed`` fast path), which is only sound given the interning fix.
"""

import os
import subprocess
import sys

import pytest

from repro.presburger import opcache, parse_set
from repro.presburger import kernel, omega
from repro.presburger.conjunct import Conjunct

from tests.unit.solvers.test_differential import CORPUS


def corpus_sets():
    return [parse_set(text) for text in CORPUS]


def corpus_conjuncts():
    seen = []
    for integer_set in corpus_sets():
        seen.extend(integer_set.conjuncts)
    # Include raw (pre-normalisation) conjuncts too: Set construction
    # already simplifies, and normalize must agree on both.
    seen.append(Conjunct(2, 0, eqs=[(2, -4, 6)], ineqs=[(3, 0, 12), (0, 2, 5)]))
    seen.append(Conjunct(1, 1, ineqs=[(1, -3, 0), (-1, 3, 1), (1, 0, 0), (-1, 0, 11)]))
    seen.append(Conjunct(1, 0, ineqs=[(2, 7), (-2, -7)]))  # promotes then refutes
    seen.append(Conjunct(1, 0, ineqs=[(3, 6), (-3, -6)]))  # promotes to an equality
    return seen


class TestModeSelection:
    def test_default_mode_is_flat(self):
        env = os.environ.get("REPRO_KERNEL", "").strip().lower()
        expected = env if env in ("flat", "object") else "flat"
        assert kernel._env_mode() == expected

    def test_configure_and_use(self):
        assert kernel.active_mode() in ("flat", "object")
        before = kernel.active_mode()
        with kernel.use("object"):
            assert kernel.active_mode() == "object"
            assert kernel.FLAT is False
            with kernel.use("flat"):
                assert kernel.active_mode() == "flat"
            assert kernel.active_mode() == "object"
        assert kernel.active_mode() == before

    def test_configure_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            kernel.configure("vectorised")

    def test_env_selection(self):
        code = (
            "from repro.presburger import kernel; "
            "import sys; sys.exit(0 if kernel.active_mode() == 'object' else 1)"
        )
        env = dict(os.environ, REPRO_KERNEL="object")
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 0

    def test_fingerprint_is_mode_independent(self):
        with kernel.use("flat"):
            flat = kernel.fingerprint()
        with kernel.use("object"):
            obj = kernel.fingerprint()
        assert flat == obj == f"kernel-v{kernel.KERNEL_VERSION}"


class TestNormalizeDifferential:
    def test_normal_forms_identical(self):
        for conjunct in corpus_conjuncts():
            with kernel.use("flat"):
                flat = omega.normalize(conjunct)
            with kernel.use("object"):
                obj = omega.normalize(conjunct)
            if obj is None:
                assert flat is None, conjunct
                continue
            assert flat is not None, conjunct
            assert flat.eqs == obj.eqs, conjunct
            assert flat.ineqs == obj.ineqs, conjunct
            assert (flat.n_vars, flat.n_div) == (obj.n_vars, obj.n_div)

    def test_normed_fast_path_returns_same_object(self):
        with kernel.use("flat"):
            for conjunct in corpus_conjuncts():
                normalized = omega.normalize(conjunct)
                if normalized is None:
                    continue
                assert normalized._normed
                assert omega.normalize(normalized) is normalized

    def test_object_path_is_idempotent_by_value(self):
        with kernel.use("object"):
            for conjunct in corpus_conjuncts():
                normalized = omega.normalize(conjunct)
                if normalized is None:
                    continue
                again = omega.normalize(normalized)
                assert again is not None
                assert again.eqs == normalized.eqs
                assert again.ineqs == normalized.ineqs


class TestInterningInvariant:
    """Satellite of the bugfix: no uninterned vector may survive normalize.

    Before the fix, the tightest-inequality rebuild (``key + (constant,)``)
    and the opposite-pair promotion appended freshly built tuples, so two
    structurally equal conjuncts could disagree on vector identity and the
    intern pool stopped deduplicating exactly the constraints the hot path
    touches most.
    """

    @pytest.mark.parametrize("mode", ["flat", "object"])
    def test_every_normalized_vector_is_interned(self, mode):
        with kernel.use(mode):
            for conjunct in corpus_conjuncts():
                normalized = omega.normalize(conjunct)
                if normalized is None:
                    continue
                for vector in normalized.eqs + normalized.ineqs:
                    assert opcache.intern_vector(vector) is vector, (
                        mode,
                        conjunct,
                        vector,
                    )

    @pytest.mark.parametrize("mode", ["flat", "object"])
    def test_set_construction_stores_interned_vectors(self, mode):
        with kernel.use(mode):
            for text in CORPUS:
                for conjunct in parse_set(text).conjuncts:
                    for vector in conjunct.eqs + conjunct.ineqs:
                        assert opcache.intern_vector(vector) is vector, (mode, text)

    @pytest.mark.parametrize("mode", ["flat", "object"])
    def test_elimination_output_is_interned(self, mode):
        with kernel.use(mode):
            for conjunct in corpus_conjuncts():
                normalized = omega.normalize(conjunct)
                if normalized is None or normalized.const_col == 0:
                    continue
                col = omega._choose_elimination_col(normalized)
                for piece in omega.eliminate_col(normalized, col):
                    for vector in piece.eqs + piece.ineqs:
                        assert opcache.intern_vector(vector) is vector, (mode, conjunct)


class TestEliminationDifferential:
    def test_eliminate_col_identical(self):
        for conjunct in corpus_conjuncts():
            normalized = omega.normalize(conjunct)
            if normalized is None or normalized.const_col == 0:
                continue
            col = omega._choose_elimination_col(normalized)
            opcache.reset()
            with kernel.use("flat"):
                flat = omega.eliminate_col(normalized, col)
            opcache.reset()
            with kernel.use("object"):
                obj = omega.eliminate_col(normalized, col)
            assert len(flat) == len(obj), conjunct
            for left, right in zip(flat, obj):
                assert left.eqs == right.eqs, conjunct
                assert left.ineqs == right.ineqs, conjunct

    def test_simplify_identical(self):
        for conjunct in corpus_conjuncts():
            opcache.reset()
            with kernel.use("flat"):
                flat = omega.simplify(conjunct)
            opcache.reset()
            with kernel.use("object"):
                obj = omega.simplify(conjunct)
            if obj is None:
                assert flat is None, conjunct
                continue
            assert flat is not None, conjunct
            assert flat.eqs == obj.eqs, conjunct
            assert flat.ineqs == obj.ineqs, conjunct

    def test_feasibility_identical(self):
        for conjunct in corpus_conjuncts():
            opcache.reset()
            with kernel.use("flat"):
                flat = omega.is_feasible(conjunct)
            opcache.reset()
            with kernel.use("object"):
                obj = omega.is_feasible(conjunct)
            assert flat == obj, conjunct


class TestSetAlgebraDifferential:
    def verdicts(self):
        sets = corpus_sets()
        table = []
        for a in sets:
            table.append(("empty", str(a), a.is_empty()))
            for b in sets:
                if a.arity != b.arity:
                    continue
                table.append(("subset", (str(a), str(b)), a.is_subset(b)))
                table.append(("equal", (str(a), str(b)), a == b))
                union = a.union(b)
                meet = a.intersect(b)
                diff = a.subtract(b)
                table.append(("union", (str(a), str(b)), str(union)))
                table.append(("intersect", (str(a), str(b)), str(meet)))
                table.append(("subtract", (str(a), str(b)), str(diff)))
        return table

    def test_full_sweep_identical(self):
        opcache.reset()
        with kernel.use("flat"):
            flat = self.verdicts()
        opcache.reset()
        with kernel.use("object"):
            obj = self.verdicts()
        assert flat == obj


class TestFeasibleMany:
    def test_matches_serial_is_feasible(self):
        conjuncts = [c for c in corpus_conjuncts()]
        with kernel.use("flat"):
            batched = kernel.feasible_many(conjuncts)
            serial = [omega.is_feasible(c) for c in conjuncts]
        assert batched == serial

    def test_empty_input(self):
        assert kernel.feasible_many([]) == []

    def test_cached_batch_accounting_matches_serial(self):
        """The batched Set._clean path must record the same opcache
        hit/miss counts as one-at-a-time memoization (the BENCH
        deterministic counters depend on it)."""
        from repro.presburger import setmap

        conjuncts = [
            c
            for text in CORPUS
            for c in parse_set(text).conjuncts
        ]
        opcache.reset()
        setmap._cached_feasible_many(conjuncts)
        first = opcache.stats()
        opcache.reset()
        for conjunct in conjuncts:
            opcache.memoized(
                "feasible", conjunct, lambda c=conjunct: omega.is_feasible(c)
            )
        second = opcache.stats()
        assert (first.hits, first.misses) == (second.hits, second.misses)


class TestFmCombine:
    LOWERS = [(1, 2, 0, 0), (2, 0, 1, 3)]
    UPPERS = [(-1, 1, 0, 7), (-3, 0, 2, 11), (-2, 2, 2, 5)]

    def test_python_matches_legacy_semantics(self):
        real, dark, all_exact = kernel._fm_combine_py(
            self.LOWERS, self.UPPERS, 0, False
        )
        assert len(real) == len(self.LOWERS) * len(self.UPPERS)
        # lower-major order: first row pairs lowers[0] with uppers[0]
        b, a = self.LOWERS[0][0], -self.UPPERS[0][0]
        expected = tuple(
            b * u + a * l for u, l in zip(self.UPPERS[0], self.LOWERS[0])
        )
        assert real[0] == expected
        assert dark[0] == expected[:-1] + (expected[-1] - (a - 1) * (b - 1),)
        assert all_exact is False

    def test_unit_bounds_skip_dark_shadow(self):
        real, dark, all_exact = kernel._fm_combine_py(
            [(1, 0, 0)], [(-1, 0, 9)], 0, True
        )
        assert real == [(0, 0, 9)]
        assert dark == []
        assert all_exact is True

    @pytest.mark.skipif(not kernel.numpy_available(), reason="numpy not installed")
    def test_numpy_matches_python(self):
        lowers = [(i % 5 + 1, i, -i, i * 3 + 1) for i in range(6)]
        uppers = [(-(j % 4 + 1), 2 * j, j, j + 7) for j in range(6)]
        for unit in (False, True):
            np_out = kernel._fm_combine_np(lowers, uppers, 0, unit)
            py_out = kernel._fm_combine_py(lowers, uppers, 0, unit)
            assert np_out == py_out

    @pytest.mark.skipif(not kernel.numpy_available(), reason="numpy not installed")
    def test_dispatch_uses_numpy_only_for_large_batches(self):
        small = kernel.fm_combine([(1, 0)], [(-1, 5)], 0, True)
        assert small == ([(0, 5)], [], True)

    def test_big_coefficients_fall_back_to_python(self):
        huge = 1 << 40
        lowers = [(huge, 0, 1)] * 4
        uppers = [(-huge, 1, 2)] * 4
        real, dark, all_exact = kernel.fm_combine(lowers, uppers, 0, False)
        expected = tuple(
            huge * u + huge * l for u, l in zip(uppers[0], lowers[0])
        )
        assert real[0] == expected
        assert real[0][0] == 0
        # exactness of the bignum path: no int64 wraparound anywhere
        assert all(row[1] == huge for row in real)

    def test_substitute_drop_matches_manual(self):
        eq = (1, -2, 0, 3)  # x0 = 2*x1 - 3
        rows = [(4, 1, 1, 0), (0, 5, 0, 1)]
        out = kernel.substitute_drop(rows, eq, 0)
        assert out[0] == (1 + 4 * 2, 1, 0 + 4 * -3)
        assert out[1] == (5, 0, 1)

    def test_drop_rows(self):
        assert kernel.drop_rows([(1, 0, 2, 3)], 1) == [(1, 2, 3)]
