"""Unit tests for Set and Map (the user-facing Presburger API)."""

import pytest

from repro.presburger import (
    LinExpr,
    Map,
    Set,
    SpaceMismatchError,
    UnboundedSetError,
    eq_,
    ge_,
    le_,
    lt_,
    parse_map,
    parse_set,
)


def interval(name, low, high):
    return Set.build([name], [ge_(LinExpr.var(name), low), le_(LinExpr.var(name), high)])


class TestSetBasics:
    def test_universe_and_empty(self):
        assert Set.universe(["x"]).is_universe()
        assert Set.empty(["x"]).is_empty()

    def test_build_and_contains(self):
        s = interval("x", 0, 9)
        assert s.contains([0]) and s.contains([9])
        assert not s.contains([10]) and not s.contains([-1])

    def test_from_points_roundtrip(self):
        s = Set.from_points(["x", "y"], [(1, 2), (3, 4)])
        assert sorted(s.points()) == [(1, 2), (3, 4)]

    def test_points_and_count(self):
        s = interval("x", 2, 6)
        assert sorted(s.points()) == [(2,), (3,), (4,), (5,), (6,)]
        assert s.count() == 5

    def test_points_of_empty_set(self):
        assert list(Set.empty(["x"]).points()) == []

    def test_unbounded_enumeration_raises(self):
        s = Set.build(["x"], [ge_(LinExpr.var("x"), 0)])
        with pytest.raises(UnboundedSetError):
            list(s.points())

    def test_arity_mismatch_raises(self):
        with pytest.raises(SpaceMismatchError):
            interval("x", 0, 3).intersect(Set.universe(["a", "b"]))

    def test_zero_dimensional_set(self):
        s = Set.universe([])
        assert not s.is_empty()
        assert list(s.points()) == [()]


class TestSetAlgebra:
    def test_intersection(self):
        a = interval("x", 0, 10)
        b = interval("x", 5, 15)
        assert sorted(a.intersect(b).points()) == [(x,) for x in range(5, 11)]

    def test_union(self):
        a = interval("x", 0, 2)
        b = interval("x", 5, 6)
        union = a.union(b)
        assert sorted(union.points()) == [(0,), (1,), (2,), (5,), (6,)]

    def test_subtract(self):
        a = interval("x", 0, 9)
        b = interval("x", 3, 5)
        assert sorted(a.subtract(b).points()) == [(0,), (1,), (2,), (6,), (7,), (8,), (9,)]

    def test_subset_and_equality(self):
        a = interval("x", 0, 4)
        b = interval("x", 0, 9)
        assert a.is_subset(b)
        assert not b.is_subset(a)
        assert a.is_equal(interval("x", 0, 4))
        assert a != b

    def test_disjoint(self):
        assert interval("x", 0, 3).is_disjoint(interval("x", 5, 8))
        assert not interval("x", 0, 5).is_disjoint(interval("x", 5, 8))

    def test_subtract_with_divisibility(self):
        full = parse_set("{ [k] : 0 <= k < 12 }")
        even = parse_set("{ [k] : exists j : k = 2j and 0 <= k < 12 }")
        odd = full.subtract(even)
        assert sorted(odd.points()) == [(k,) for k in range(1, 12, 2)]
        assert even.union(odd).is_equal(full)

    def test_project_out(self):
        square = Set.build(
            ["x", "y"],
            [ge_(LinExpr.var("x"), 0), le_(LinExpr.var("x"), 3), ge_(LinExpr.var("y"), 0), le_(LinExpr.var("y"), 2)],
        )
        projected = square.project_out(["y"])
        assert sorted(projected.points()) == [(0,), (1,), (2,), (3,)]

    def test_coalesce_drops_contained_conjuncts(self):
        a = interval("x", 0, 9)
        b = interval("x", 2, 4)
        union = a.union(b)
        coalesced = union.coalesce()
        assert coalesced.is_equal(a)
        assert len(coalesced.conjuncts) == 1

    def test_operators(self):
        a, b = interval("x", 0, 5), interval("x", 3, 8)
        assert (a & b).is_equal(interval("x", 3, 5))
        assert ((a | b)).is_equal(interval("x", 0, 8))
        assert (a - b).is_equal(interval("x", 0, 2))


class TestMapBasics:
    def test_identity(self):
        ident = Map.identity(["x"])
        assert ident.contains([4], [4])
        assert not ident.contains([4], [5])

    def test_from_exprs(self):
        m = Map.from_exprs(["k"], [2 * LinExpr.var("k")], [ge_(LinExpr.var("k"), 0), lt_(LinExpr.var("k"), 4)])
        assert sorted(m.pairs()) == [((0,), (0,)), ((1,), (2,)), ((2,), (4,)), ((3,), (6,))]

    def test_domain_and_range(self):
        m = parse_map("{ [k] -> [2k] : 0 <= k < 4 }")
        assert sorted(m.domain().points()) == [(0,), (1,), (2,), (3,)]
        assert sorted(m.range().points()) == [(0,), (2,), (4,), (6,)]

    def test_inverse(self):
        m = parse_map("{ [k] -> [k + 3] : 0 <= k < 3 }")
        assert sorted(m.inverse().pairs()) == [((3,), (0,)), ((4,), (1,)), ((5,), (2,))]

    def test_compose_paper_example(self):
        # Section 3.2: M_C,tmp . M_tmp,B1  =  {[k] -> [2k]}
        c_tmp = parse_map("{ [k] -> [k] : 0 <= k < 1024 }")
        tmp_b = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
        composed = c_tmp.compose(tmp_b)
        assert composed.is_equal(parse_map("{ [k] -> [2k] : 0 <= k < 1024 }"))

    def test_compose_strided(self):
        first = parse_map("{ [k] -> [2k] : 0 <= k < 8 }")
        second = parse_map("{ [x] -> [x + 1] : exists j : x = 2j }")
        composed = first.compose(second)
        assert sorted(composed.pairs()) == [((k,), (2 * k + 1,)) for k in range(8)]

    def test_compose_arity_mismatch(self):
        with pytest.raises(SpaceMismatchError):
            Map.identity(["x"]).compose(Map.identity(["a", "b"]))

    def test_apply_and_preimage(self):
        m = parse_map("{ [k] -> [2k] : 0 <= k < 8 }")
        image = m.apply(parse_set("{ [k] : 2 <= k <= 3 }"))
        assert sorted(image.points()) == [(4,), (6,)]
        pre = m.preimage(parse_set("{ [x] : 4 <= x <= 6 }"))
        assert sorted(pre.points()) == [(2,), (3,)]

    def test_restrict_domain_and_range(self):
        m = parse_map("{ [k] -> [k] : 0 <= k < 10 }")
        restricted = m.restrict_domain(parse_set("{ [k] : k >= 5 }"))
        assert sorted(restricted.domain().points()) == [(k,) for k in range(5, 10)]
        restricted = m.restrict_range(parse_set("{ [k] : k <= 2 }"))
        assert sorted(restricted.range().points()) == [(0,), (1,), (2,)]


class TestMapProperties:
    def test_single_valued_and_injective(self):
        doubling = parse_map("{ [k] -> [2k] : 0 <= k < 16 }")
        assert doubling.is_single_valued()
        assert doubling.is_injective()
        constant = parse_map("{ [k] -> [0] : 0 <= k < 16 }")
        assert constant.is_single_valued()
        assert not constant.is_injective()
        relation = parse_map("{ [k] -> [j] : 0 <= k < 4 and 0 <= j < 2 }")
        assert not relation.is_single_valued()

    def test_deltas(self):
        shift = parse_map("{ [k] -> [k - 1] : 1 <= k < 8 }")
        deltas = shift.deltas()
        assert sorted(deltas.points()) == [(-1,)]

    def test_equality_of_piecewise_maps(self):
        split = parse_map("{ [k] -> [k] : 0 <= k < 4 ; [k] -> [k] : 4 <= k < 8 }")
        whole = parse_map("{ [k] -> [k] : 0 <= k < 8 }")
        assert split.is_equal(whole)

    def test_subtract_detects_difference_domain(self):
        double = parse_map("{ [x] -> [2x] : 0 <= x < 8 }")
        ident = parse_map("{ [x] -> [x] : 0 <= x < 8 }")
        difference = double.subtract(ident)
        # they agree only at x = 0
        assert sorted(difference.domain().points()) == [(x,) for x in range(1, 8)]

    def test_union_and_is_empty(self):
        m = Map.empty(["a"], ["b"])
        assert m.is_empty()
        assert not m.union(Map.identity(["a"])).is_empty()

    def test_rename_preserves_meaning(self):
        m = parse_map("{ [k] -> [2k] : 0 <= k < 4 }")
        renamed = m.rename(["i"], ["o"])
        assert renamed.is_equal(m)
        assert renamed.in_names == ("i",)

    def test_str_shows_image_form(self):
        m = parse_map("{ [k] -> [2k] : 0 <= k < 4 }")
        assert "2*k" in str(m)
