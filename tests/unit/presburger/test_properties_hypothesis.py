"""Property-based tests (hypothesis) for the Presburger set algebra.

Random small sets over a bounded box are generated both symbolically and as
explicit point sets; every algebraic operation must agree with Python set
semantics, and the usual lattice laws must hold.
"""

from typing import List, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.presburger import LinExpr, Map, Set, eq_, ge_, le_
from repro.presburger.conjunct import Conjunct

BOX_LOW, BOX_HIGH = 0, 7
BOX = [(x,) for x in range(BOX_LOW, BOX_HIGH + 1)]


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def conjunct_1d(draw) -> Conjunct:
    """A random 1-D conjunct with small coefficients inside the test box."""
    constraints = []
    count = draw(st.integers(min_value=0, max_value=3))
    for _ in range(count):
        a = draw(st.integers(min_value=-3, max_value=3))
        c = draw(st.integers(min_value=-8, max_value=8))
        is_eq = draw(st.booleans())
        constraints.append(((a, c), is_eq))
    eqs = [vec for vec, is_eq in constraints if is_eq]
    ineqs = [vec for vec, is_eq in constraints if not is_eq]
    # Always stay within the box so enumeration is cheap.
    ineqs.append((1, -BOX_LOW))
    ineqs.append((-1, BOX_HIGH))
    return Conjunct(1, 0, eqs, ineqs)


@st.composite
def set_1d(draw) -> Set:
    conjuncts = draw(st.lists(conjunct_1d(), min_size=1, max_size=3))
    return Set(["x"], conjuncts)


def explicit(s: Set) -> frozenset:
    return frozenset(p for p in BOX if s.contains(p))


# --------------------------------------------------------------------------- #
# Properties
# --------------------------------------------------------------------------- #
@settings(max_examples=60, deadline=None)
@given(set_1d(), set_1d())
def test_union_matches_point_semantics(a, b):
    assert explicit(a.union(b)) == explicit(a) | explicit(b)


@settings(max_examples=60, deadline=None)
@given(set_1d(), set_1d())
def test_intersection_matches_point_semantics(a, b):
    assert explicit(a.intersect(b)) == explicit(a) & explicit(b)


@settings(max_examples=60, deadline=None)
@given(set_1d(), set_1d())
def test_subtraction_matches_point_semantics(a, b):
    assert explicit(a.subtract(b)) == explicit(a) - explicit(b)


@settings(max_examples=60, deadline=None)
@given(set_1d(), set_1d())
def test_subset_matches_point_semantics(a, b):
    assert a.is_subset(b) == (explicit(a) <= explicit(b))


@settings(max_examples=60, deadline=None)
@given(set_1d())
def test_emptiness_matches_point_semantics(a):
    # The symbolic set may extend beyond the box only through the box bounds we
    # added, so emptiness must coincide with the explicit enumeration.
    assert a.is_empty() == (len(explicit(a)) == 0)


@settings(max_examples=40, deadline=None)
@given(set_1d(), set_1d(), set_1d())
def test_distributivity(a, b, c):
    left = a.intersect(b.union(c))
    right = a.intersect(b).union(a.intersect(c))
    assert left.is_equal(right)


@settings(max_examples=40, deadline=None)
@given(set_1d(), set_1d())
def test_subtract_then_union_recovers_superset(a, b):
    # (a - b) | (a & b) == a
    rebuilt = a.subtract(b).union(a.intersect(b))
    assert rebuilt.is_equal(a)


@settings(max_examples=40, deadline=None)
@given(set_1d())
def test_double_complement_within_box(a):
    box = Set.build(["x"], [ge_(LinExpr.var("x"), BOX_LOW), le_(LinExpr.var("x"), BOX_HIGH)])
    complement = box.subtract(a)
    double = box.subtract(complement)
    assert explicit(double) == explicit(a)


@settings(max_examples=40, deadline=None)
@given(set_1d())
def test_points_agree_with_contains(a):
    enumerated = set(a.points())
    for point in BOX:
        assert (point in enumerated) == a.contains(point)


# --------------------------------------------------------------------------- #
# Map properties
# --------------------------------------------------------------------------- #
@st.composite
def affine_map(draw) -> Map:
    """A random affine map k -> a*k + b restricted to the box."""
    a = draw(st.integers(min_value=-2, max_value=2))
    b = draw(st.integers(min_value=-3, max_value=3))
    k = LinExpr.var("k")
    return Map.from_exprs(
        ["k"], [a * k + b], [ge_(k, BOX_LOW), le_(k, BOX_HIGH)]
    )


@settings(max_examples=40, deadline=None)
@given(affine_map(), affine_map())
def test_composition_matches_pointwise(first, second):
    composed = first.compose(second)
    first_pairs = dict(first.pairs())
    second_pairs = dict(second.pairs())
    expected = {
        (x, second_pairs[y]) for x, y in first_pairs.items() if y in second_pairs
    }
    assert set(composed.pairs()) == expected


@settings(max_examples=40, deadline=None)
@given(affine_map())
def test_inverse_swaps_pairs(m):
    assert set(m.inverse().pairs()) == {(y, x) for x, y in m.pairs()}


@settings(max_examples=40, deadline=None)
@given(affine_map())
def test_affine_maps_are_single_valued(m):
    assert m.is_single_valued()


@settings(max_examples=40, deadline=None)
@given(affine_map())
def test_domain_range_consistency(m):
    pairs = list(m.pairs())
    assert set(m.domain().points()) == {x for x, _ in pairs}
    assert set(m.range().points()) == {y for _, y in pairs}
