"""Unit tests for transitive closure of dependence relations."""

import pytest

from repro.presburger import Map, parse_map, power_closure_exactness, transitive_closure


class TestUniformClosure:
    def test_backward_chain(self):
        relation = parse_map("{ [k] -> [k - 1] : 1 <= k < 8 }")
        closure, exact = transitive_closure(relation)
        assert exact
        expected = {((i,), (j,)) for i in range(1, 8) for j in range(0, i)}
        assert set(closure.pairs()) == expected

    def test_forward_chain(self):
        relation = parse_map("{ [k] -> [k + 2] : 0 <= k < 6 }")
        closure, exact = transitive_closure(relation)
        assert exact
        # k -> k + 2t for t >= 1, staying within the range constraints
        assert closure.contains([0], [2])
        assert closure.contains([0], [6])
        assert not closure.contains([0], [1])
        assert not closure.contains([0], [0])

    def test_two_dimensional_translation(self):
        relation = parse_map("{ [i, j] -> [i, j - 1] : 0 <= i < 3 and 1 <= j < 4 }")
        closure, exact = transitive_closure(relation)
        assert exact
        assert closure.contains([1, 3], [1, 0])
        assert not closure.contains([1, 3], [2, 0])

    def test_closure_of_empty_relation(self):
        empty = Map.empty(["k"], ["k'"])
        closure, exact = transitive_closure(empty)
        assert exact
        assert closure.is_empty()

    def test_exactness_certificate_rejects_wrong_candidate(self):
        relation = parse_map("{ [k] -> [k - 1] : 1 <= k < 8 }")
        wrong = parse_map("{ [k] -> [j] : 0 <= j < k < 8 and 0 <= j }").union(
            parse_map("{ [k] -> [k] : 0 <= k < 8 }")
        )
        assert not power_closure_exactness(relation, wrong)

    def test_exactness_certificate_accepts_true_closure(self):
        relation = parse_map("{ [k] -> [k - 1] : 1 <= k < 6 }")
        closure, exact = transitive_closure(relation)
        assert exact
        assert power_closure_exactness(relation, closure)

    def test_non_uniform_relation_is_overapproximated(self):
        relation = parse_map("{ [k] -> [2k] : 1 <= k < 5 }")
        closure, exact = transitive_closure(relation)
        assert not exact
        # the over-approximation must still contain the real closure
        assert closure.contains([1], [2])
        assert closure.contains([1], [4])  # 1 -> 2 -> 4

    def test_irreflexive_for_acyclic_dependence(self):
        relation = parse_map("{ [k] -> [k - 1] : 1 <= k < 10 }")
        closure, exact = transitive_closure(relation)
        assert exact
        identity = parse_map("{ [k] -> [k] : 0 <= k < 10 }")
        assert closure.intersect(identity).is_empty()
