"""Unit tests for affine expressions (LinExpr)."""

import pytest

from repro.presburger import LinExpr


class TestConstruction:
    def test_var_has_unit_coefficient(self):
        k = LinExpr.var("k")
        assert k.coeff("k") == 1
        assert k.const == 0

    def test_constant(self):
        c = LinExpr.constant(7)
        assert c.is_constant()
        assert c.const == 7

    def test_zero_coefficients_are_dropped(self):
        expr = LinExpr({"a": 0, "b": 3}, 1)
        assert expr.variables() == ("b",)

    def test_coerce_int_str_expr(self):
        assert LinExpr.coerce(5) == LinExpr.constant(5)
        assert LinExpr.coerce("x") == LinExpr.var("x")
        e = LinExpr.var("y")
        assert LinExpr.coerce(e) is e

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            LinExpr.coerce(1.5)

    def test_non_integer_coefficient_rejected(self):
        with pytest.raises(TypeError):
            LinExpr({"x": 1.5}, 0)


class TestArithmetic:
    def test_addition_merges_coefficients(self):
        e = LinExpr.var("x") + LinExpr.var("x") + 3
        assert e.coeff("x") == 2
        assert e.const == 3

    def test_subtraction_cancels(self):
        e = LinExpr.var("x") - LinExpr.var("x")
        assert e.is_constant()
        assert e.const == 0

    def test_negation(self):
        e = -(2 * LinExpr.var("x") + 1)
        assert e.coeff("x") == -2
        assert e.const == -1

    def test_scalar_multiplication(self):
        e = 3 * (LinExpr.var("x") + 2)
        assert e.coeff("x") == 3
        assert e.const == 6

    def test_right_subtraction(self):
        e = 10 - LinExpr.var("x")
        assert e.coeff("x") == -1
        assert e.const == 10

    def test_product_of_two_non_constants_rejected(self):
        with pytest.raises(TypeError):
            LinExpr.var("x") * LinExpr.var("y")

    def test_product_with_constant_expr(self):
        e = LinExpr.var("x") * LinExpr.constant(4)
        assert e.coeff("x") == 4


class TestOperations:
    def test_substitute(self):
        e = 2 * LinExpr.var("x") + LinExpr.var("y")
        result = e.substitute({"x": LinExpr.var("k") + 1})
        assert result.coeff("k") == 2
        assert result.coeff("y") == 1
        assert result.const == 2

    def test_evaluate(self):
        e = 2 * LinExpr.var("x") - 3 * LinExpr.var("y") + 5
        assert e.evaluate({"x": 4, "y": 1}) == 10

    def test_evaluate_missing_binding_raises(self):
        with pytest.raises(KeyError):
            LinExpr.var("x").evaluate({})

    def test_rename(self):
        e = LinExpr.var("x") + 2 * LinExpr.var("y")
        renamed = e.rename({"x": "a"})
        assert renamed.coeff("a") == 1
        assert renamed.coeff("y") == 2

    def test_to_vector_ordering(self):
        e = 2 * LinExpr.var("j") + LinExpr.var("i") - 4
        assert e.to_vector(["i", "j"]) == (1, 2, -4)

    def test_to_vector_unknown_variable_raises(self):
        with pytest.raises(KeyError):
            LinExpr.var("z").to_vector(["i", "j"])

    def test_equality_and_hash(self):
        a = LinExpr.var("x") + 1
        b = 1 + LinExpr.var("x")
        assert a == b
        assert hash(a) == hash(b)

    def test_str_rendering(self):
        assert str(2 * LinExpr.var("k") - 2) == "2*k - 2"
        assert str(LinExpr.constant(0)) == "0"
        assert str(-LinExpr.var("k")) == "-k"

    def test_bool(self):
        assert not LinExpr.constant(0)
        assert LinExpr.constant(1)
        assert LinExpr.var("x")
