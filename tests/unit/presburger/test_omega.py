"""Unit tests for the Omega-test core: normalisation, elimination, feasibility, complement.

The exactness of these operations underpins the entire checker, so several
tests cross-validate the symbolic results against brute-force enumeration.
"""

import itertools

import pytest

from repro.presburger.conjunct import Conjunct
from repro.presburger import omega


def points_of(conjunct, ranges):
    """Brute-force enumeration of the public-dimension points of a conjunct."""
    result = set()
    for candidate in itertools.product(*ranges):
        plugged = conjunct.substitute_vars(list(candidate))
        if omega.is_feasible(plugged):
            result.add(candidate)
    return result


class TestModHat:
    def test_values(self):
        assert omega.mod_hat(5, 6) == -1
        assert omega.mod_hat(-5, 6) == 1
        assert omega.mod_hat(6, 6) == 0
        assert omega.mod_hat(7, 6) == 1

    def test_range_property(self):
        for a in range(-20, 21):
            for m in range(1, 8):
                value = omega.mod_hat(a, m)
                assert (a - value) % m == 0
                assert abs(2 * value) <= m

    def test_invalid_modulus(self):
        with pytest.raises(ValueError):
            omega.mod_hat(3, 0)


class TestNormalize:
    def test_gcd_reduction_of_equality(self):
        conjunct = Conjunct(2, 0, eqs=[(2, -4, 6)])
        normalized = omega.normalize(conjunct)
        assert normalized is not None
        assert normalized.eqs == ((1, -2, 3),)

    def test_infeasible_equality_by_gcd(self):
        # 2x = 1 has no integer solution.
        conjunct = Conjunct(1, 0, eqs=[(2, -1)])
        assert omega.normalize(conjunct) is None

    def test_inequality_tightening(self):
        # 2x - 1 >= 0  =>  x >= 1  (tightened to x - 1 >= 0)
        conjunct = Conjunct(1, 0, ineqs=[(2, -1)])
        normalized = omega.normalize(conjunct)
        assert normalized.ineqs == ((1, -1),)

    def test_constant_contradiction(self):
        conjunct = Conjunct(1, 0, ineqs=[(0, -1)])
        assert omega.normalize(conjunct) is None

    def test_trivial_constraints_removed(self):
        conjunct = Conjunct(1, 0, eqs=[(0, 0)], ineqs=[(0, 5)])
        normalized = omega.normalize(conjunct)
        assert normalized.eqs == ()
        assert normalized.ineqs == ()

    def test_opposite_inequalities_promoted_to_equality(self):
        # x >= 3 and x <= 3  =>  x = 3
        conjunct = Conjunct(1, 0, ineqs=[(1, -3), (-1, 3)])
        normalized = omega.normalize(conjunct)
        assert len(normalized.eqs) == 1
        assert not normalized.ineqs

    def test_conflicting_bounds_detected(self):
        # x >= 4 and x <= 3
        conjunct = Conjunct(1, 0, ineqs=[(1, -4), (-1, 3)])
        assert omega.normalize(conjunct) is None


class TestEliminateCol:
    def test_unit_equality_substitution(self):
        # x = 2k - 2, 1 <= k <= 4 ; eliminate k (column 1)
        conjunct = Conjunct(2, 0, eqs=[(1, -2, 2)], ineqs=[(0, 1, -1), (0, -1, 4)])
        pieces = omega.eliminate_col(conjunct, 1)
        # Result should describe x in {0, 2, 4, 6}
        values = set()
        for piece in pieces:
            for x in range(-2, 10):
                if omega.is_feasible(piece.substitute_vars([x])):
                    values.add(x)
        assert values == {0, 2, 4, 6}

    def test_projection_keeps_divisibility(self):
        # exists k: x = 2k   ==> x even
        conjunct = Conjunct(2, 0, eqs=[(1, -2, 0)])
        pieces = omega.project_cols(conjunct, [1])
        assert pieces
        even = {x for x in range(-6, 7) if any(omega.is_feasible(p.substitute_vars([x])) for p in pieces)}
        assert even == {-6, -4, -2, 0, 2, 4, 6}

    def test_inequality_elimination_exact_case(self):
        # 0 <= y <= 5, x = some var with  y <= x <= y + 2 ; eliminate y
        conjunct = Conjunct(
            2,
            0,
            ineqs=[
                (0, 1, 0),    # y >= 0
                (0, -1, 5),   # y <= 5
                (1, -1, 0),   # x >= y
                (-1, 1, 2),   # x <= y + 2
            ],
        )
        pieces = omega.eliminate_col(conjunct, 1)
        values = {x for x in range(-3, 12) if any(omega.is_feasible(p.substitute_vars([x])) for p in pieces)}
        assert values == set(range(0, 8))

    def test_unbounded_direction(self):
        # x <= y (no lower bound on y): projection over x is everything
        conjunct = Conjunct(2, 0, ineqs=[(-1, 1, 0)])
        pieces = omega.eliminate_col(conjunct, 1)
        assert len(pieces) == 1
        assert pieces[0].is_universe()

    def test_non_unit_coefficient_equality(self):
        # 2x = y, eliminate x: y must be even.
        conjunct = Conjunct(2, 0, eqs=[(2, -1, 0)])
        pieces = omega.eliminate_col(conjunct, 0)
        values = {y for y in range(-6, 7) if any(omega.is_feasible(p.substitute_vars([y])) for p in pieces)}
        assert values == {-6, -4, -2, 0, 2, 4, 6}

    def test_inexact_inequality_elimination_against_bruteforce(self):
        # 3 <= 2y <= x with 0 <= x <= 9: the projection onto x needs dark shadow / splinters.
        conjunct = Conjunct(
            2,
            0,
            ineqs=[
                (0, 2, -3),   # 2y >= 3
                (1, -2, 0),   # x >= 2y
                (1, 0, 0),    # x >= 0
                (-1, 0, 9),   # x <= 9
            ],
        )
        expected = set()
        for x in range(0, 10):
            if any(2 * y >= 3 and x >= 2 * y for y in range(0, 10)):
                expected.add((x,))
        pieces = omega.eliminate_col(conjunct, 1)
        actual = set()
        for x in range(0, 10):
            if any(omega.is_feasible(p.substitute_vars([x])) for p in pieces):
                actual.add((x,))
        assert actual == expected


class TestFeasibility:
    def test_simple_feasible(self):
        conjunct = Conjunct(1, 0, ineqs=[(1, 0), (-1, 10)])
        assert omega.is_feasible(conjunct)

    def test_simple_infeasible(self):
        conjunct = Conjunct(1, 0, ineqs=[(1, -5), (-1, 3)])
        assert not omega.is_feasible(conjunct)

    def test_parity_infeasible(self):
        # x = 2a and x = 2b + 1 simultaneously
        conjunct = Conjunct(1, 2, eqs=[(1, -2, 0, 0), (1, 0, -2, -1)])
        assert not omega.is_feasible(conjunct)

    def test_needs_integer_reasoning(self):
        # 2 <= 3x <= 4 has the rational solution x = 1 (3*1=3); so feasible.
        conjunct = Conjunct(1, 0, ineqs=[(3, -2), (-3, 4)])
        assert omega.is_feasible(conjunct)
        # 4 <= 3x <= 5 has no integer solution although rationally feasible.
        conjunct = Conjunct(1, 0, ineqs=[(3, -4), (-3, 5)])
        assert not omega.is_feasible(conjunct)

    def test_zero_dimensional(self):
        assert omega.is_feasible(Conjunct(0, 0))
        assert not omega.is_feasible(Conjunct(0, 0, ineqs=[(-1,)]))

    @pytest.mark.parametrize("bound", [1, 2, 5, 17])
    def test_box_always_feasible(self, bound):
        conjunct = Conjunct(2, 0, ineqs=[(1, 0, 0), (-1, 0, bound), (0, 1, 0), (0, -1, bound)])
        assert omega.is_feasible(conjunct)


class TestComplement:
    def test_complement_of_interval(self):
        conjunct = Conjunct(1, 0, ineqs=[(1, 0), (-1, 5)])  # 0 <= x <= 5
        pieces = omega.complement(conjunct)
        inside = set(range(0, 6))
        for x in range(-10, 16):
            in_complement = any(omega.is_feasible(p.substitute_vars([x])) for p in pieces)
            assert in_complement == (x not in inside)

    def test_complement_of_divisibility(self):
        # x even (0 <= x <= 10)
        conjunct = Conjunct(1, 1, eqs=[(1, -2, 0)], ineqs=[(1, 0, 0), (-1, 0, 10)])
        pieces = omega.complement(conjunct)
        for x in range(-4, 15):
            in_original = (x % 2 == 0) and 0 <= x <= 10
            in_complement = any(omega.is_feasible(p.substitute_vars([x])) for p in pieces)
            assert in_complement == (not in_original), x

    def test_complement_of_universe_is_empty(self):
        assert omega.complement(Conjunct.universe(1)) == []

    def test_complement_of_empty_is_universe(self):
        conjunct = Conjunct(1, 0, ineqs=[(0, -1)])
        pieces = omega.complement(conjunct)
        assert len(pieces) == 1
        assert pieces[0].is_universe()

    def test_complement_of_equality(self):
        conjunct = Conjunct(1, 0, eqs=[(1, -3)])  # x = 3
        pieces = omega.complement(conjunct)
        for x in range(-2, 9):
            in_complement = any(omega.is_feasible(p.substitute_vars([x])) for p in pieces)
            assert in_complement == (x != 3)


class TestSimplify:
    def test_drop_unused_divs(self):
        conjunct = Conjunct(1, 2, ineqs=[(1, 0, 0, 0)])
        simplified = omega.simplify(conjunct)
        assert simplified.n_div == 0

    def test_substitute_unit_divs(self):
        # exists e: x = e and e <= 5  ==>  x <= 5
        conjunct = Conjunct(1, 1, eqs=[(1, -1, 0)], ineqs=[(0, -1, 5)])
        simplified = omega.simplify(conjunct)
        assert simplified.n_div == 0
        assert simplified.ineqs == ((-1, 5),)

    def test_div_canonicalisation_moves_bounds_to_public(self):
        # exists k: x = 2k - 2 and 1 <= k <= 4: the k-bounds must become x-bounds.
        conjunct = Conjunct(1, 1, eqs=[(1, -2, 2)], ineqs=[(0, 1, -1), (0, -1, 4)])
        simplified = omega.simplify(conjunct)
        # The div may remain (divisibility), but no inequality may involve it.
        for vec in simplified.ineqs:
            assert all(vec[c] == 0 for c in range(simplified.n_vars, simplified.const_col))

    def test_duplicate_divisibilities_are_merged(self):
        # two copies of "x even"
        conjunct = Conjunct(1, 2, eqs=[(1, -2, 0, 0), (1, 0, -2, 0)])
        simplified = omega.simplify(conjunct)
        assert simplified.n_div == 1

    def test_infeasible_detected(self):
        conjunct = Conjunct(1, 0, eqs=[(0, 3)])
        assert omega.simplify(conjunct) is None


class TestScaledSubstitution:
    def test_cancels_column(self):
        vec = (3, 4, 5, 6)
        eq = (1, 2, 0, 4)
        result = omega._scaled_substitution(vec, eq, 1)
        assert result[1] == 0

    def test_preserves_solutions(self):
        # eq: x - 2e = 0 ; vec (ineq): e - 1 >= 0  -> substituting gives x - 2 >= 0
        eq = (1, -2, 0)
        vec = (0, 1, -1)
        result = omega._scaled_substitution(vec, eq, 1)
        assert result == (1, 0, -2)
