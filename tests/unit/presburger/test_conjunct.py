"""Unit tests for the Conjunct container."""

import pytest

from repro.presburger.conjunct import Conjunct, vector_gcd


class TestBasics:
    def test_universe_has_no_constraints(self):
        conjunct = Conjunct.universe(3)
        assert conjunct.is_universe()
        assert conjunct.n_cols == 4
        assert conjunct.const_col == 3

    def test_wrong_vector_length_rejected(self):
        with pytest.raises(ValueError):
            Conjunct(2, 0, eqs=[(1, 2)])

    def test_constraints_listing(self):
        conjunct = Conjunct(1, 0, eqs=[(1, 0)], ineqs=[(1, 5)])
        constraints = conjunct.constraints()
        assert ((1, 0), True) in constraints
        assert ((1, 5), False) in constraints

    def test_involves_col(self):
        conjunct = Conjunct(2, 0, eqs=[(1, 0, 0)])
        assert conjunct.involves_col(0)
        assert not conjunct.involves_col(1)

    def test_equality_is_order_insensitive(self):
        a = Conjunct(1, 0, ineqs=[(1, 0), (-1, 5)])
        b = Conjunct(1, 0, ineqs=[(-1, 5), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestStructuralOps:
    def test_with_constraints_appends(self):
        base = Conjunct.universe(1)
        extended = base.with_constraints(ineqs=[(1, 0)])
        assert base.is_universe()
        assert extended.ineqs == ((1, 0),)

    def test_add_divs_widens_vectors(self):
        conjunct = Conjunct(1, 0, eqs=[(1, -3)])
        widened = conjunct.add_divs(2)
        assert widened.n_div == 2
        assert widened.eqs == ((1, 0, 0, -3),)

    def test_drop_col_requires_zero_coefficients(self):
        conjunct = Conjunct(2, 0, eqs=[(1, 1, 0)])
        with pytest.raises(ValueError):
            conjunct.drop_col(1)

    def test_drop_col_shifts(self):
        conjunct = Conjunct(2, 1, eqs=[(1, 0, 2, -3)])
        dropped = conjunct.drop_col(1)
        assert dropped.n_vars == 1
        assert dropped.eqs == ((1, 2, -3),)

    def test_drop_constant_column_rejected(self):
        with pytest.raises(ValueError):
            Conjunct.universe(1).drop_col(1)

    def test_promote_var_to_div(self):
        conjunct = Conjunct(2, 0, eqs=[(1, 2, 3)])
        promoted = conjunct.promote_var_to_div(0)
        assert promoted.n_vars == 1
        assert promoted.n_div == 1
        # the promoted column moved after the remaining public dims
        assert promoted.eqs == ((2, 1, 3),)

    def test_substitute_vars(self):
        conjunct = Conjunct(2, 1, ineqs=[(1, 2, 3, 4)])
        plugged = conjunct.substitute_vars([10, -1])
        assert plugged.n_vars == 0
        assert plugged.n_div == 1
        assert plugged.ineqs == ((3, 12),)

    def test_substitute_wrong_arity(self):
        with pytest.raises(ValueError):
            Conjunct.universe(2).substitute_vars([1])


class TestPretty:
    def test_pretty_universe(self):
        assert Conjunct.universe(1).pretty() == "true"

    def test_pretty_with_names(self):
        conjunct = Conjunct(2, 0, eqs=[(1, -2, 0)])
        text = conjunct.pretty(["x", "k"])
        assert "x" in text and "k" in text and "= 0" in text


def test_vector_gcd():
    assert vector_gcd([4, 6, -8]) == 2
    assert vector_gcd([0, 0]) == 0
    assert vector_gcd([5]) == 5
