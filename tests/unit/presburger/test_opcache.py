"""Differential and contract tests for the Presburger operation cache.

The cache layer (:mod:`repro.presburger.opcache`) must be a pure
optimization: every memoized operation has to return a value ``==`` to the
one the uncached code path computes, interning must preserve the
``__eq__`` / ``__hash__`` contracts exactly, and the LRU must stay within
its configured bound.  The tests run each operation twice — once against the
warm global cache, once inside ``opcache.disabled()`` — and compare.
"""

import pytest

from repro.checker import check_equivalence
from repro.presburger import (
    Conjunct,
    LinExpr,
    Map,
    SpaceMismatchError,
    opcache,
    parse_map,
    parse_set,
    transitive_closure,
)
from repro.workloads.fig1 import fig1_original, fig1_ver1


@pytest.fixture(autouse=True)
def fresh_cache():
    """Start every test cold and leave the global cache clean afterwards."""
    opcache.reset()
    yield
    opcache.reset()
    opcache.configure(maxsize=opcache.DEFAULT_SIZE, enabled=True)


MAP_SOURCES = [
    "{ [k] -> [2k - 2] : 1 <= k <= 64 }",
    "{ [k] -> [k + 1] : 0 <= k < 128 }",
    "{ [k] -> [k] : exists j : k = 2j and 0 <= k < 128 }",
    "{ [k] -> [2k] : 0 <= k < 32 ; [k] -> [2k] : 32 <= k < 64 }",
    "{ [i, j] -> [i, j - 1] : 0 <= i < 8 and 1 <= j < 8 }",
]

SET_SOURCES = [
    "{ [k] : 0 <= k < 128 }",
    "{ [k] : exists j : k = 2j and 0 <= k < 128 }",
    "{ [k] : 10 <= k < 40 }",
    "{ [i, j] : 0 <= i < 8 and 0 <= j < 8 }",
]


def _composable(left, right):
    return left.n_out == right.n_in


class TestMemoizedEqualsUncached:
    """Property-style sweep: cached result == uncached result, per operation."""

    @pytest.mark.parametrize("left_source", MAP_SOURCES)
    @pytest.mark.parametrize("right_source", MAP_SOURCES)
    def test_compose(self, left_source, right_source):
        left, right = parse_map(left_source), parse_map(right_source)
        if not _composable(left, right):
            pytest.skip("arity mismatch")
        cached = left.compose(right)
        again = left.compose(right)
        with opcache.disabled():
            uncached = left.compose(right)
        assert cached.is_equal(uncached)
        assert again is cached  # the second call is a cache hit returning the same object

    @pytest.mark.parametrize("source", MAP_SOURCES)
    def test_inverse(self, source):
        relation = parse_map(source)
        cached = relation.inverse()
        with opcache.disabled():
            uncached = relation.inverse()
        assert cached.is_equal(uncached)
        assert cached.inverse().is_equal(relation)

    @pytest.mark.parametrize("left_source", SET_SOURCES)
    @pytest.mark.parametrize("right_source", SET_SOURCES)
    def test_intersect_and_subtract(self, left_source, right_source):
        left, right = parse_set(left_source), parse_set(right_source)
        if left.arity != right.arity:
            pytest.skip("arity mismatch")
        cached_and = left.intersect(right)
        cached_sub = left.subtract(right)
        with opcache.disabled():
            uncached_and = left.intersect(right)
            uncached_sub = left.subtract(right)
        assert cached_and.is_equal(uncached_and)
        assert cached_sub.is_equal(uncached_sub)

    @pytest.mark.parametrize(
        "source",
        [
            "{ [k] -> [k + 1] : 0 <= k < 32 }",
            "{ [i, j] -> [i, j - 1] : 0 <= i < 8 and 1 <= j < 8 }",
        ],
    )
    def test_transitive_closure(self, source):
        relation = parse_map(source)
        cached_closure, cached_exact = transitive_closure(relation)
        with opcache.disabled():
            uncached_closure, uncached_exact = transitive_closure(relation)
        assert cached_exact == uncached_exact
        assert cached_closure.is_equal(uncached_closure)

    @pytest.mark.parametrize("left_source", SET_SOURCES)
    @pytest.mark.parametrize("right_source", SET_SOURCES)
    def test_feasibility_queries(self, left_source, right_source):
        left, right = parse_set(left_source), parse_set(right_source)
        if left.arity != right.arity:
            pytest.skip("arity mismatch")
        cached = (left.is_empty(), left.is_subset(right), left.is_disjoint(right))
        with opcache.disabled():
            uncached = (left.is_empty(), left.is_subset(right), left.is_disjoint(right))
        assert cached == uncached

    def test_fresh_parses_share_cached_results(self):
        """Structural keys mean a re-parsed relation hits the warm cache."""
        first = parse_map(MAP_SOURCES[0]).compose(parse_map(MAP_SOURCES[1]))
        before = opcache.snapshot()
        second = parse_map(MAP_SOURCES[0]).compose(parse_map(MAP_SOURCES[1]))
        delta = opcache.snapshot().delta(before)
        assert second is first
        assert delta.per_op.get("compose", (0, 0))[0] >= 1


class TestInterning:
    def test_conjunct_interning_preserves_eq_and_hash(self):
        original = Conjunct(1, 0, [(1, -4)], [(1, 0), (-1, 10)])
        twin = Conjunct(1, 0, [(1, -4)], [(-1, 10), (1, 0)])  # reordered ineqs
        canonical = opcache.intern_conjunct(original)
        canonical_twin = opcache.intern_conjunct(twin)
        assert canonical is opcache.intern_conjunct(original)
        assert canonical_twin is canonical  # same normalized key -> same object
        assert canonical == original and hash(canonical) == hash(original)
        assert canonical == twin and hash(canonical) == hash(twin)

    def test_linexpr_interning_preserves_eq_and_hash(self):
        built = 2 * LinExpr.var("k") - 2
        rebuilt = LinExpr({"k": 2}, -2)
        assert built.interned() is rebuilt.interned()
        assert built.interned() == rebuilt and hash(built.interned()) == hash(rebuilt)

    def test_var_and_constant_constructors_are_interned(self):
        assert LinExpr.var("k") is LinExpr.var("k")
        assert LinExpr.constant(7) is LinExpr.constant(7)
        assert LinExpr.var("k") is not LinExpr.var("j")

    def test_interning_disabled_is_identity(self):
        expr = LinExpr.var("z")
        with opcache.disabled():
            fresh = LinExpr({"z": 1}, 0)
            assert fresh.interned() is fresh

    def test_set_membership_after_interning(self):
        conjuncts = {opcache.intern_conjunct(Conjunct(1, 0, [(1, -i)], [])) for i in range(4)}
        assert Conjunct(1, 0, [(1, -2)], []) in conjuncts


class TestCacheMechanics:
    def test_lru_respects_maxsize(self):
        opcache.configure(maxsize=4)
        for i in range(32):
            parse_set(f"{{ [k] : 0 <= k < {i + 1} }}").is_empty()
        assert len(opcache.cache()) <= 4
        assert opcache.stats().evictions > 0

    def test_disable_switch_stops_hits(self):
        relation = parse_map(MAP_SOURCES[0])
        relation.inverse()
        before = opcache.snapshot()
        with opcache.disabled():
            relation.inverse()
            relation.inverse()
        delta = opcache.snapshot().delta(before)
        assert delta.hits == 0 and delta.misses == 0

    def test_env_style_configure_rejects_bad_size(self):
        with pytest.raises(ValueError):
            opcache.configure(maxsize=0)

    def test_compose_arity_error_names_both_spaces(self):
        left = parse_map("{ [i, j] -> [i, j] : 0 <= i < 4 and 0 <= j < 4 }")
        right = parse_map("{ [k] -> [k] : 0 <= k < 4 }")
        with pytest.raises(SpaceMismatchError) as excinfo:
            left.compose(right)
        message = str(excinfo.value)
        assert "[i, j]" in message and "[k]" in message
        assert "output space" in message and "input space" in message

    def test_compose_arity_error_with_set_derived_map(self):
        """The Map.identity of a Set's space composes; a mismatched one explains itself."""
        domain = parse_set("{ [a, b] : 0 <= a < 4 and 0 <= b < 4 }")
        identity = Map.identity(domain.names, domain=domain)
        one_dim = parse_map("{ [k] -> [k] : 0 <= k < 4 }")
        with pytest.raises(SpaceMismatchError) as excinfo:
            one_dim.compose(identity)
        message = str(excinfo.value)
        assert "[a, b]" in message and "[k]" in message


class TestCheckerIntegration:
    def test_fig1_check_reports_cache_hits(self):
        result = check_equivalence(fig1_original(), fig1_ver1())
        assert result.equivalent
        assert result.stats.opcache_hits > 0
        assert result.stats.intern_hits > 0
        assert result.stats.opcache_misses > 0

    def test_checkstats_roundtrip_includes_opcache_fields(self):
        result = check_equivalence(fig1_original(), fig1_ver1())
        data = result.stats.to_dict()
        assert data["opcache_hits"] == result.stats.opcache_hits
        restored = type(result.stats).from_dict(data)
        assert restored == result.stats

    def test_verdict_is_cache_independent(self):
        cached = check_equivalence(fig1_original(), fig1_ver1())
        with opcache.disabled():
            uncached = check_equivalence(fig1_original(), fig1_ver1())
        assert cached.equivalent == uncached.equivalent
        assert cached.stats.compare_calls == uncached.stats.compare_calls
        assert uncached.stats.opcache_hits == 0
