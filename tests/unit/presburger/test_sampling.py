"""Point sampling and lexicographic minima of integer sets.

The witness-synthesis layer (:mod:`repro.diagnostics.witness`) relies on two
contracts of :meth:`Set.sample_point` / :meth:`Set.lexmin`: every returned
point is a member of the set, and the lexicographic minimum really is the
smallest point under tuple order.  Both are checked here on hand-written
edge cases (empty, unbounded, single-point, divisibility-constrained) and by
a differential sweep against full enumeration.
"""

import random

import pytest

from repro.presburger import (
    Set,
    UnboundedSetError,
    eq_,
    ge_,
    le_,
    lt_,
    parse_set,
)
from repro.presburger.linexpr import LinExpr


class TestLexmin:
    def test_simple_box(self):
        s = parse_set("{ [i, j] : 0 <= i < 8 and 0 <= j < 8 }")
        assert s.lexmin() == (0, 0)

    def test_triangular_domain(self):
        s = parse_set("{ [i, j] : 0 <= i < 8 and i < j < 8 }")
        assert s.lexmin() == (0, 1)

    def test_single_point_set(self):
        s = parse_set("{ [i, j] : i = 2 and j = -3 }")
        assert s.lexmin() == (2, -3)

    def test_union_takes_the_smaller_piece(self):
        s = parse_set("{ [k] : 0 <= k < 8 ; [k] : -5 <= k < -2 }")
        assert s.lexmin() == (-5,)

    def test_unbounded_above_is_fine(self):
        s = parse_set("{ [i] : i >= 4 }")
        assert s.lexmin() == (4,)

    def test_divisibility_shifts_the_minimum(self):
        s = parse_set("{ [i] : exists e : i = 3e and 5 <= i < 50 }")
        assert s.lexmin() == (6,)

    def test_negative_first_dimension_dominates(self):
        s = parse_set("{ [i, j] : -3 <= i <= 3 and 10 - i <= j <= 20 }")
        assert s.lexmin() == (-3, 13)

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            parse_set("{ [i] : i > 0 and i < 0 }").lexmin()
        with pytest.raises(ValueError):
            Set.empty(["i"]).lexmin()

    def test_unbounded_below_raises(self):
        with pytest.raises(UnboundedSetError):
            parse_set("{ [i] : i <= 4 }").lexmin()
        with pytest.raises(UnboundedSetError):
            Set.universe(["i", "j"]).lexmin()

    def test_second_dimension_unbounded_below_raises(self):
        with pytest.raises(UnboundedSetError):
            parse_set("{ [i, j] : 0 <= i < 4 and j <= i }").lexmin()

    def test_zero_dimensional_set(self):
        assert Set.universe([]).lexmin() == ()

    def test_huge_divisibility_gap_fails_loudly_not_slowly(self):
        # The scan above the rational lower bound is capped even when a
        # finite upper bound exists — a pathological modulus must raise, not
        # degrade into an O(gap) feasibility sweep.
        from repro.presburger import UnsupportedOperationError

        s = parse_set("{ [x] : 1 <= x and x <= 2000000 and exists d : x = 500000 d }")
        with pytest.raises(UnsupportedOperationError):
            s.lexmin()

    def test_moderate_divisibility_gap_within_the_cap_succeeds(self):
        s = parse_set("{ [x] : 1 <= x <= 20000 and exists d : x = 3000 d }")
        assert s.lexmin() == (3000,)

    def test_matches_enumeration_on_random_boxes(self):
        rng = random.Random(7)
        for _ in range(25):
            low_i, low_j = rng.randint(-6, 2), rng.randint(-6, 2)
            size_i, size_j = rng.randint(1, 5), rng.randint(1, 5)
            constraints = [
                ge_(LinExpr.var("i"), LinExpr.constant(low_i)),
                lt_(LinExpr.var("i"), LinExpr.constant(low_i + size_i)),
                ge_(LinExpr.var("j"), LinExpr.constant(low_j)),
                lt_(LinExpr.var("j"), LinExpr.constant(low_j + size_j)),
                ge_(LinExpr.var("i") + LinExpr.var("j"), LinExpr.constant(low_i + low_j)),
            ]
            s = Set.build(["i", "j"], constraints)
            if s.is_empty():
                continue
            assert s.lexmin() == min(s.points())


class TestSamplePoint:
    def test_member_of_simple_sets(self):
        s = parse_set("{ [i, j] : 0 <= i < 10 and i <= j < 10 }")
        for seed in range(10):
            assert s.contains(s.sample_point(seed))

    def test_deterministic_per_seed(self):
        s = parse_set("{ [i] : 0 <= i < 100 }")
        assert s.sample_point(3) == s.sample_point(3)
        assert {s.sample_point(seed) for seed in range(20)} != {s.sample_point(0)}

    def test_single_point_set(self):
        s = Set.from_points(["i", "j"], [(4, 5)])
        assert s.sample_point() == (4, 5)
        assert s.sample_point(99) == (4, 5)

    def test_unbounded_set_falls_back_to_lexmin(self):
        s = parse_set("{ [i] : i >= 7 }")
        assert s.sample_point() == (7,)
        assert s.sample_point(12) == (7,)

    def test_huge_box_falls_back_to_lexmin(self):
        s = parse_set("{ [i, j] : 0 <= i < 10000 and 0 <= j < 10000 }")
        assert s.sample_point(limit=100) == (0, 0)

    def test_empty_set_raises(self):
        with pytest.raises(ValueError):
            Set.empty(["i"]).sample_point()

    def test_divisibility_sample_satisfies_the_constraint(self):
        s = parse_set("{ [i] : exists e : i = 4e and 0 <= i < 64 }")
        for seed in range(8):
            point = s.sample_point(seed)
            assert point[0] % 4 == 0
            assert s.contains(point)

    def test_differential_sweep_every_sample_satisfies_its_conjunct(self):
        """Every sampled point of a random set is a member of that set."""
        rng = random.Random(123)
        for round_index in range(30):
            names = ["i", "j"][: rng.randint(1, 2)]
            constraints = []
            for name in names:
                low = rng.randint(-5, 5)
                constraints.append(ge_(LinExpr.var(name), LinExpr.constant(low)))
                constraints.append(
                    le_(LinExpr.var(name), LinExpr.constant(low + rng.randint(0, 6)))
                )
            if len(names) == 2 and rng.random() < 0.5:
                constraints.append(le_(LinExpr.var("i"), LinExpr.var("j")))
            if rng.random() < 0.3:
                constraints.append(
                    eq_(LinExpr.var(names[0]) - LinExpr.var(names[0]), LinExpr.constant(0))
                )
            s = Set.build(names, constraints)
            if s.is_empty():
                continue
            for seed in range(3):
                assert s.contains(s.sample_point(seed + round_index))
