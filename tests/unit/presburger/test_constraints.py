"""Unit tests for the symbolic constraint helpers (eq_, ge_, le_, ...)."""

import pytest

from repro.presburger import AffineConstraint, LinExpr, Set, all_of, eq_, ge_, gt_, le_, lt_


k = LinExpr.var("k")


class TestHelpers:
    def test_eq(self):
        constraint = eq_(k, 3)
        assert constraint.is_equality
        assert constraint.expr == k - 3

    def test_ge(self):
        constraint = ge_(k, 2)
        assert not constraint.is_equality
        assert constraint.expr == k - 2

    def test_le(self):
        constraint = le_(k, 5)
        assert constraint.expr == 5 - k

    def test_lt_is_integer_strict(self):
        constraint = lt_(k, 5)
        # k < 5  <=>  4 - k >= 0
        assert constraint.expr == 4 - k

    def test_gt_is_integer_strict(self):
        constraint = gt_(k, 5)
        assert constraint.expr == k - 6

    def test_default_rhs_is_zero(self):
        assert ge_(k).expr == k

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            AffineConstraint(k, "<=")

    def test_variables_and_rename(self):
        constraint = eq_(LinExpr.var("x"), 2 * LinExpr.var("y"))
        assert constraint.variables() == ("x", "y")
        renamed = constraint.rename({"y": "z"})
        assert renamed.variables() == ("x", "z")

    def test_substitute(self):
        constraint = ge_(LinExpr.var("x"), 0).substitute({"x": k + 1})
        assert constraint.expr == k + 1

    def test_all_of_flattens(self):
        constraints = all_of(ge_(k, 0), [le_(k, 5), [eq_(k, 2)]])
        assert len(constraints) == 3

    def test_equality_and_hash(self):
        assert eq_(k, 3) == eq_(k, 3)
        assert hash(eq_(k, 3)) == hash(eq_(k, 3))
        assert eq_(k, 3) != ge_(k, 3)


class TestIntegrationWithSets:
    def test_build_set_semantics(self):
        box = Set.build(["k"], [ge_(k, 0), lt_(k, 3)])
        assert sorted(box.points()) == [(0,), (1,), (2,)]

    def test_strict_bounds_match_integer_semantics(self):
        a = Set.build(["k"], [gt_(k, 0), lt_(k, 4)])
        assert sorted(a.points()) == [(1,), (2,), (3,)]
