"""Unit tests for the textual set/map notation parser."""

import pytest

from repro.presburger import Map, ParseError, Set, parse_map, parse_set


class TestSetParsing:
    def test_simple_interval(self):
        s = parse_set("{ [k] : 0 <= k < 4 }")
        assert sorted(s.points()) == [(0,), (1,), (2,), (3,)]

    def test_chained_comparison(self):
        s = parse_set("{ [k] : 0 <= k <= 3 }")
        assert s.count() == 4

    def test_two_dimensional(self):
        s = parse_set("{ [i, j] : 0 <= i < 2 and 0 <= j < 3 }")
        assert s.count() == 6

    def test_conjunct_union_with_semicolon(self):
        s = parse_set("{ [k] : 0 <= k < 2 ; [k] : 10 <= k < 12 }")
        assert sorted(s.points()) == [(0,), (1,), (10,), (11,)]

    def test_conjunct_union_with_or(self):
        s = parse_set("{ [k] : k = 1 or k = 5 }")
        assert sorted(s.points()) == [(1,), (5,)]

    def test_explicit_exists(self):
        s = parse_set("{ [k] : exists j : k = 2j and 0 <= k < 10 }")
        assert sorted(s.points()) == [(0,), (2,), (4,), (6,), (8,)]

    def test_implicit_existential(self):
        s = parse_set("{ [k] : k = 3j and 0 <= k < 10 }")
        assert sorted(s.points()) == [(0,), (3,), (6,), (9,)]

    def test_modulo_syntax(self):
        s = parse_set("{ [k] : k % 4 = 1 and 0 <= k < 12 }")
        assert sorted(s.points()) == [(1,), (5,), (9,)]

    def test_mod_keyword(self):
        s = parse_set("{ [k] : k mod 3 = 0 and 0 <= k < 7 }")
        assert sorted(s.points()) == [(0,), (3,), (6,)]

    def test_implicit_multiplication(self):
        a = parse_set("{ [k] : 2k < 10 and k >= 0 }")
        b = parse_set("{ [k] : 2*k < 10 and k >= 0 }")
        assert a.is_equal(b)

    def test_expression_tuple_entry(self):
        s = parse_set("{ [2k] : 0 <= k < 3 }")
        assert sorted(s.points()) == [(0,), (2,), (4,)]

    def test_negative_constants(self):
        s = parse_set("{ [k] : -2 <= k <= -1 }")
        assert sorted(s.points()) == [(-2,), (-1,)]

    def test_unconstrained_set(self):
        s = parse_set("{ [k] }")
        assert s.is_universe()

    def test_empty_by_contradiction(self):
        s = parse_set("{ [k] : k > 3 and k < 2 }")
        assert s.is_empty()


class TestMapParsing:
    def test_simple_map(self):
        m = parse_map("{ [k] -> [2k] : 0 <= k < 4 }")
        assert sorted(m.pairs()) == [((0,), (0,)), ((1,), (2,)), ((2,), (4,)), ((3,), (6,))]

    def test_paper_dependency_mapping(self):
        # Section 3.2: M_buf,A2 = {[x] -> [y] : x = 2k-2 and y = k-1 and 1 <= k <= 1024}
        m = parse_map("{ [x] -> [y] : x = 2k - 2 and y = k - 1 and 1 <= k <= 1024 }")
        assert m.contains([0], [0])
        assert m.contains([2046], [1023])
        assert not m.contains([1], [0])

    def test_multi_dimensional_map(self):
        m = parse_map("{ [i, j] -> [j, i] : 0 <= i < 2 and 0 <= j < 2 }")
        assert m.contains([0, 1], [1, 0])
        assert not m.contains([0, 1], [0, 1])

    def test_map_with_same_dim_name(self):
        m = parse_map("{ [k] -> [k] : 0 <= k < 4 }")
        assert m.is_equal(Map.identity(["k"]).restrict_domain(parse_set("{ [k] : 0 <= k < 4 }")))

    def test_map_union(self):
        m = parse_map("{ [k] -> [k] : 0 <= k < 2 ; [k] -> [k + 1] : 2 <= k < 4 }")
        assert sorted(m.pairs()) == [((0,), (0,)), ((1,), (1,)), ((2,), (3,)), ((3,), (4,))]

    def test_unconstrained_map_is_not_empty(self):
        m = parse_map("{ [k] -> [k] }")
        assert not m.is_empty()


class TestErrors:
    def test_set_when_map_expected(self):
        with pytest.raises(ParseError):
            parse_map("{ [k] : k >= 0 }")

    def test_map_when_set_expected(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] -> [k] }")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k >= 0 } extra")

    def test_unbalanced_brace(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k >= 0")

    def test_nonlinear_product(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k * k < 5 }")

    def test_missing_comparison(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k }")

    def test_mixed_set_and_map_conjuncts(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k >= 0 ; [k] -> [k] }")

    def test_arity_mismatch_between_conjuncts(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k >= 0 ; [i, j] : i >= j }")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_set("{ [k] : k >= $ }")
