"""Unit tests for the loop transformations (semantics preserved, structure changed)."""

import pytest

from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.lang.ast import ForLoop
from repro.transforms import (
    TransformError,
    loop_fission,
    loop_fusion,
    loop_interchange,
    loop_normalize_steps,
    loop_reversal,
    loop_shift,
    loop_split,
)


TWO_STMT = """
f(int A[], int B[], int C[], int D[]) {
    int k, t[16];
    for (k = 0; k < 16; k++) {
s1:     C[k] = A[k] + B[k];
s2:     D[k] = A[k] - B[k];
    }
}
"""

SINGLE = """
f(int A[], int C[]) {
    int k;
    for (k = 0; k < 16; k++)
s1:     C[k] = A[k] + A[k + 1];
}
"""

NESTED = """
f(int A[4][6], int C[4][6]) {
    int i, j;
    for (i = 0; i < 4; i++)
        for (j = 0; j < 6; j++)
s1:         C[i][j] = A[i][j] + 1;
}
"""


def same_behaviour(original_src_or_prog, transformed, seed=11):
    original = parse_program(original_src_or_prog) if isinstance(original_src_or_prog, str) else original_src_or_prog
    provider = random_input_provider(seed)
    return outputs_equal(run_program(original, provider), run_program(transformed, provider))


class TestFission:
    def test_fission_splits_loop(self):
        original = parse_program(TWO_STMT)
        transformed = loop_fission(original, "s1")
        loops = [s for s in transformed.body if isinstance(s, ForLoop)]
        assert len(loops) == 2
        assert same_behaviour(original, transformed)

    def test_fission_requires_multiple_statements(self):
        with pytest.raises(TransformError):
            loop_fission(parse_program(SINGLE), "s1")

    def test_original_program_untouched(self):
        original = parse_program(TWO_STMT)
        before = len(original.body)
        loop_fission(original, "s1")
        assert len(original.body) == before


class TestFusion:
    def test_fusion_of_adjacent_loops(self):
        original = parse_program(TWO_STMT)
        fissioned = loop_fission(original, "s1")
        fused = loop_fusion(fissioned, "s1", "s2")
        loops = [s for s in fused.body if isinstance(s, ForLoop)]
        assert len(loops) == 1
        assert len(loops[0].body) == 2
        assert same_behaviour(original, fused)

    def test_fusion_requires_identical_headers(self):
        program = parse_program(
            """
            f(int A[], int C[], int D[]) {
                int k;
                for (k = 0; k < 16; k++) s1: C[k] = A[k];
                for (k = 0; k < 8; k++)  s2: D[k] = A[k];
            }
            """
        )
        with pytest.raises(TransformError):
            loop_fusion(program, "s1", "s2")

    def test_fusion_renames_different_iterators(self):
        program = parse_program(
            """
            f(int A[], int C[], int D[]) {
                int k, j;
                for (k = 0; k < 16; k++) s1: C[k] = A[k];
                for (j = 0; j < 16; j++) s2: D[j] = A[j + 1];
            }
            """
        )
        fused = loop_fusion(program, "s1", "s2")
        assert same_behaviour(program, fused)


class TestReversal:
    def test_reversal_preserves_behaviour(self):
        original = parse_program(SINGLE)
        transformed = loop_reversal(original, "s1")
        loop = transformed.body[0]
        assert loop.step == -1
        assert same_behaviour(original, transformed)

    def test_reversal_of_strided_loop(self):
        source = "f(int A[], int C[]) { int k; for(k=1;k<16;k+=3) s1: C[k] = A[k]; }"
        original = parse_program(source)
        transformed = loop_reversal(original, "s1")
        assert same_behaviour(original, transformed)
        assert transformed.body[0].step == -3

    def test_reversal_requires_constant_bounds(self):
        # A loop whose bound depends on an outer iterator cannot be reversed.
        triangular = parse_program(
            """
            f(int A[], int C[]) {
                int i, j, t[8][8];
                for (i = 0; i < 8; i++)
                    for (j = 0; j < i; j++)
            s1:         t[i][j] = A[j];
                for (i = 1; i < 8; i++)
            s2:     C[i] = t[i][0];
            }
            """
        )
        with pytest.raises(TransformError):
            loop_reversal(triangular, "s1", depth=-1)


class TestInterchange:
    def test_interchange_swaps_loop_order(self):
        original = parse_program(NESTED)
        transformed = loop_interchange(original, "s1")
        outer = transformed.body[0]
        assert outer.var == "j"
        assert outer.body[0].var == "i"
        assert same_behaviour(original, transformed)

    def test_interchange_requires_nest(self):
        with pytest.raises(TransformError):
            loop_interchange(parse_program(SINGLE), "s1")


class TestSplitShiftNormalize:
    def test_split_preserves_behaviour_and_relabels(self):
        original = parse_program(SINGLE)
        transformed = loop_split(original, "s1", 6)
        labels = [a.label for a in transformed.assignments()]
        assert len(labels) == len(set(labels)) == 2
        assert same_behaviour(original, transformed)

    def test_split_of_downward_loop(self):
        source = "f(int A[], int C[]) { int k; for(k=15;k>=0;k--) s1: C[k] = A[k]; }"
        original = parse_program(source)
        transformed = loop_split(original, "s1", 8)
        assert same_behaviour(original, transformed)

    def test_shift_preserves_behaviour(self):
        original = parse_program(SINGLE)
        transformed = loop_shift(original, "s1", 3)
        loop = transformed.body[0]
        assert same_behaviour(original, transformed)

    def test_normalize_strided_loop(self):
        source = "f(int A[], int C[]) { int k; for(k=2;k<20;k+=3) s1: C[k] = A[k]; }"
        original = parse_program(source)
        transformed = loop_normalize_steps(original, "s1")
        assert transformed.body[0].step == 1
        assert same_behaviour(original, transformed)

    def test_normalize_downward_loop(self):
        source = "f(int A[], int C[]) { int k; for(k=19;k>=1;k-=2) s1: C[k] = A[k]; }"
        original = parse_program(source)
        transformed = loop_normalize_steps(original, "s1")
        assert same_behaviour(original, transformed)
