"""Property-style differential tests for every public transformation.

This is the soundness contract the scenario engine rests on: applying any
equivalence-preserving transform must leave the interpreter's outputs
unchanged on seeded random inputs.  Every public function of
``transforms/loop.py``, ``transforms/algebraic.py`` and
``transforms/dataflow.py`` is exercised here, plus the composed pipelines
(default and extended probe sets) over generated programs and kernel
originals.
"""

import random

import pytest

from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.scenarios.spec import SMALL_KERNEL_PARAMS
from repro.transforms import (
    commute_operands,
    compose_random_pipeline,
    extended_probes,
    forward_substitution,
    introduce_temporary,
    loop_fission,
    loop_fusion,
    loop_interchange,
    loop_normalize_steps,
    loop_reversal,
    loop_shift,
    loop_split,
    random_reassociation,
    reassociate_chain,
    rotate_left,
    rotate_right,
)
from repro.transforms.algebraic import collect_chain, rebuild_chain
from repro.workloads import RandomProgramGenerator, kernel_names, kernel_pair

SEEDS = (0, 1, 2)


def assert_semantics_preserved(original, transformed, seeds=SEEDS):
    """Outputs must agree element for element on every seeded random input."""
    for seed in seeds:
        provider = random_input_provider(seed)
        assert outputs_equal(
            run_program(original, provider), run_program(transformed, provider)
        ), f"outputs diverge on input seed {seed}"


TWO_LOOP_SOURCE = """
void f(int a[], int b[], int out[])
{
    int i, t[16], u[16];
    for (i = 0; i < 16; i++) {
p1:     t[i] = a[i] + b[i] + a[i + 1] + 2;
p2:     u[i] = t[i] * b[i];
    }
    for (i = 0; i < 16; i++) {
p3:     out[i] = t[i] + u[i] + b[i];
    }
}
"""

TEMP_SOURCE = """
void d(int a[], int out[])
{
    int i, tmp[20];
    for (i = 0; i < 16; i++) {
d1:     tmp[i] = a[i] * 3;
    }
    for (i = 0; i < 16; i++) {
d2:     out[i] = tmp[i] + a[i];
    }
}
"""

NEST_SOURCE = """
void h(int A[8][8], int out[8][8])
{
    int i, j;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
q1:         out[i][j] = A[i][j] + A[j][i];
        }
    }
}
"""

STRIDED_SOURCE = """
void s(int a[], int out[])
{
    int i;
    for (i = 0; i < 16; i += 2) {
s1:     out[i] = a[i] + 1;
    }
    for (i = 1; i < 16; i += 2) {
s2:     out[i] = a[i] - 1;
    }
}
"""


class TestLoopTransformProperties:
    def test_loop_fission(self):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = loop_fission(program, "p1")
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_loop_fusion(self):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = loop_fusion(program, "p1", "p3")
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_loop_reversal(self):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = loop_reversal(program, "p3")
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_loop_interchange(self):
        program = parse_program(NEST_SOURCE)
        transformed = loop_interchange(program, "q1")
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_loop_split(self):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = loop_split(program, "p3", at=7)
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_loop_split_downward_loop(self):
        program = loop_reversal(parse_program(TWO_LOOP_SOURCE), "p3")
        transformed = loop_split(program, "p3", at=7)
        assert_semantics_preserved(parse_program(TWO_LOOP_SOURCE), transformed)

    @pytest.mark.parametrize("offset", [1, -1, 3])
    def test_loop_shift(self, offset):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = loop_shift(program, "p3", offset)
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    @pytest.mark.parametrize("label", ["s1", "s2"])
    def test_loop_normalize_steps(self, label):
        program = parse_program(STRIDED_SOURCE)
        transformed = loop_normalize_steps(program, label)
        assert transformed != program
        assert_semantics_preserved(program, transformed)


class TestAlgebraicTransformProperties:
    def test_commute_operands(self):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = commute_operands(program, "p3", ())
        assert transformed != program
        assert_semantics_preserved(program, transformed)

    def test_rotate_right_then_left_roundtrip(self):
        program = parse_program(TWO_LOOP_SOURCE)
        rotated = rotate_right(program, "p1", ())
        assert rotated != program
        assert_semantics_preserved(program, rotated)
        back = rotate_left(rotated, "p1", ())
        assert back == program
        assert_semantics_preserved(program, back)

    @pytest.mark.parametrize("order", [[1, 0, 2, 3], [3, 2, 1, 0], [2, 3, 0, 1]])
    @pytest.mark.parametrize("left_assoc", [True, False])
    def test_reassociate_chain(self, order, left_assoc):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = reassociate_chain(program, "p1", order, op="+", left_assoc=left_assoc)
        assert_semantics_preserved(program, transformed)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_reassociation(self, seed):
        program = parse_program(TWO_LOOP_SOURCE)
        transformed = random_reassociation(program, "p3", random.Random(seed))
        assert_semantics_preserved(program, transformed)

    @pytest.mark.parametrize("left_assoc", [True, False])
    def test_collect_rebuild_chain_roundtrip(self, left_assoc):
        program = parse_program(TWO_LOOP_SOURCE)
        from repro.transforms.locate import find_assignment

        rhs = find_assignment(program, "p1").rhs
        operands = collect_chain(rhs, "+")
        assert len(operands) == 4
        rebuilt = rebuild_chain(operands, "+", left_assoc=left_assoc)
        assert collect_chain(rebuilt, "+") == operands


class TestDataflowTransformProperties:
    def test_forward_substitution(self):
        program = parse_program(TEMP_SOURCE)
        transformed = forward_substitution(program, "tmp")
        assert all(decl.name != "tmp" for decl in transformed.locals)
        assert_semantics_preserved(program, transformed)

    def test_forward_substitution_shifted_write(self):
        source = TEMP_SOURCE.replace("tmp[i] = a[i] * 3", "tmp[i + 2] = a[i] * 3").replace(
            "out[i] = tmp[i] + a[i]", "out[i] = tmp[i + 2] + a[i]"
        )
        program = parse_program(source)
        transformed = forward_substitution(program, "tmp")
        assert_semantics_preserved(program, transformed)

    def test_introduce_temporary(self):
        program = parse_program(TEMP_SOURCE)
        transformed = introduce_temporary(program, "d2", (1,), "held")
        assert any(decl.name == "held" for decl in transformed.locals)
        assert_semantics_preserved(program, transformed)

    def test_introduce_temporary_twice_keeps_labels_unique(self):
        # Regression: the pre-statement label was hardcoded to "<label>_pre",
        # so a second temporary for the same statement left the program with
        # duplicate labels — outside the allowed class (checker rejects it).
        from repro.lang.validate import require_program_class

        program = parse_program(TEMP_SOURCE)
        once = introduce_temporary(program, "d2", (1,), "ta")
        twice = introduce_temporary(once, "d2", (1,), "tb")
        labels = [a.label for a in twice.assignments() if a.label]
        assert len(labels) == len(set(labels))
        require_program_class(twice)
        assert_semantics_preserved(program, twice)

    def test_introduce_then_substitute_is_identity_semantics(self):
        program = parse_program(TEMP_SOURCE)
        widened = introduce_temporary(program, "d2", (), "held")
        collapsed = forward_substitution(widened, "held")
        assert_semantics_preserved(program, widened)
        assert_semantics_preserved(program, collapsed)


class TestComposedPipelineProperties:
    """The scenario engine's soundness contract over its full probe set."""

    @pytest.mark.parametrize("seed", range(8))
    def test_extended_pipeline_on_generated_programs(self, seed):
        program = RandomProgramGenerator(seed=seed, stages=3, size=16).generate()
        transformed, steps = compose_random_pipeline(
            program, random.Random(seed), steps=4, probes=extended_probes()
        )
        assert steps, "expected at least one applicable transformation"
        assert_semantics_preserved(program, transformed, seeds=(0, 1))

    @pytest.mark.parametrize("kernel", kernel_names())
    @pytest.mark.parametrize("seed", (0, 1))
    def test_extended_pipeline_on_kernel_originals(self, kernel, seed):
        original = kernel_pair(kernel, **SMALL_KERNEL_PARAMS.get(kernel, {})).original
        transformed, _ = compose_random_pipeline(
            original, random.Random(f"{kernel}:{seed}"), steps=3, probes=extended_probes()
        )
        assert_semantics_preserved(original, transformed, seeds=(0, 1))

    @pytest.mark.parametrize("kernel", ["matvec", "fir", "prefix_sum"])
    def test_guard_rejects_recurrence_reversal(self, kernel):
        """Inner-recurrence reversals must never survive the guarded probes.

        A direct regression for the matvec bug: reversing the accumulation
        loop reads acc[i][j-1] before it is written, and check_dataflow must
        reject exactly that candidate inside compose_random_pipeline.
        """
        original = kernel_pair(kernel, **SMALL_KERNEL_PARAMS.get(kernel, {})).original
        for seed in range(5):
            transformed, _ = compose_random_pipeline(
                original, random.Random(f"guard:{kernel}:{seed}"), steps=4,
                probes=extended_probes(),
            )
            assert_semantics_preserved(original, transformed, seeds=(0,))
