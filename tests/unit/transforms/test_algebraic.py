"""Unit tests for the algebraic rewrites (commutation, rotation, reassociation)."""

import random

import pytest

from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.lang.ast import BinOp
from repro.transforms import (
    TransformError,
    collect_chain,
    commute_operands,
    random_reassociation,
    reassociate_chain,
    rebuild_chain,
    rotate_left,
    rotate_right,
)

SOURCE = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = (A[k] + A[k+1]) + A[k+2]; }"


def rhs_of(program, label="s1"):
    return program.assignment_by_label(label).rhs


def behaves_like(a, b, seed=2):
    provider = random_input_provider(seed)
    return outputs_equal(run_program(a, provider), run_program(b, provider))


class TestChainHelpers:
    def test_collect_chain(self):
        program = parse_program(SOURCE)
        chain = collect_chain(rhs_of(program), "+")
        assert len(chain) == 3

    def test_collect_chain_stops_at_other_operators(self):
        program = parse_program(
            "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = (A[k] * A[k+1]) + A[k+2]; }"
        )
        chain = collect_chain(rhs_of(program), "+")
        assert len(chain) == 2

    def test_rebuild_chain_left_and_right(self):
        program = parse_program(SOURCE)
        chain = collect_chain(rhs_of(program), "+")
        left = rebuild_chain(chain, "+", left_assoc=True)
        right = rebuild_chain(chain, "+", left_assoc=False)
        assert isinstance(left.lhs, BinOp)
        assert isinstance(right.rhs, BinOp)

    def test_rebuild_empty_chain_rejected(self):
        with pytest.raises(TransformError):
            rebuild_chain([], "+")


class TestRewrites:
    def test_commute(self):
        program = parse_program(SOURCE)
        transformed = commute_operands(program, "s1")
        assert behaves_like(program, transformed)
        assert rhs_of(transformed) != rhs_of(program)

    def test_commute_requires_binop(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = A[k]; }"
        with pytest.raises(TransformError):
            commute_operands(parse_program(source), "s1")

    def test_rotate_right_then_left_is_identity(self):
        program = parse_program(SOURCE)
        rotated = rotate_right(program, "s1")
        restored = rotate_left(rotated, "s1")
        assert rhs_of(restored) == rhs_of(program)
        assert behaves_like(program, rotated)

    def test_rotate_left_requires_right_nested_chain(self):
        program = parse_program(SOURCE)  # left-nested
        with pytest.raises(TransformError):
            rotate_left(program, "s1")

    def test_reassociate_with_permutation(self):
        program = parse_program(SOURCE)
        transformed = reassociate_chain(program, "s1", order=[2, 0, 1], left_assoc=False)
        assert behaves_like(program, transformed)
        assert len(collect_chain(rhs_of(transformed), "+")) == 3

    def test_reassociate_rejects_bad_permutation(self):
        with pytest.raises(TransformError):
            reassociate_chain(parse_program(SOURCE), "s1", order=[0, 0, 1])

    def test_reassociate_requires_chain(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<8;k++) s1: C[k] = A[k]; }"
        with pytest.raises(TransformError):
            reassociate_chain(parse_program(source), "s1")

    def test_random_reassociation_is_behaviour_preserving(self):
        program = parse_program(SOURCE)
        rng = random.Random(17)
        for _ in range(5):
            transformed = random_reassociation(program, "s1", rng)
            assert behaves_like(program, transformed)

    def test_checker_validates_reassociation(self):
        from repro.checker import check_equivalence

        program = parse_program(SOURCE)
        transformed = reassociate_chain(program, "s1", order=[1, 2, 0], left_assoc=False)
        assert check_equivalence(program, transformed).equivalent
        assert not check_equivalence(program, transformed, method="basic").equivalent
