"""Unit tests for the error-injection (mutation) engine."""

import random

import pytest

from repro.checker import check_equivalence
from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.transforms import (
    Mutation,
    TransformError,
    change_operator,
    perturb_read_index,
    perturb_write_index,
    random_mutation,
    replace_read_array,
    shrink_loop_bound,
)

SOURCE = """
f(int A[], int B[], int C[]) {
    int k, t[16];
    for (k = 0; k < 16; k++)
s1:     t[k] = A[k] + B[2*k];
    for (k = 0; k < 16; k++)
s2:     C[k] = t[k] + B[k];
}
"""


def changes_behaviour(original, mutated, seed=9):
    provider = random_input_provider(seed)
    try:
        return not outputs_equal(run_program(original, provider), run_program(mutated, provider))
    except Exception:
        # e.g. reads of undefined elements after a write-index mutation
        return True


class TestIndividualMutations:
    def setup_method(self):
        self.program = parse_program(SOURCE)

    def test_perturb_read_index(self):
        mutated, mutation = perturb_read_index(self.program, "s1", occurrence=0, delta=2)
        assert isinstance(mutation, Mutation)
        assert mutation.kind == "read-index"
        assert changes_behaviour(self.program, mutated)

    def test_perturb_read_index_of_specific_array(self):
        mutated, mutation = perturb_read_index(self.program, "s1", occurrence=0, delta=1, array="B")
        assert "B" in mutation.arrays
        assert changes_behaviour(self.program, mutated)

    def test_perturb_read_index_missing_target(self):
        with pytest.raises(TransformError):
            perturb_read_index(self.program, "s1", occurrence=7)

    def test_perturb_write_index(self):
        mutated, mutation = perturb_write_index(self.program, "s2", delta=1)
        assert mutation.kind == "write-index"
        assert changes_behaviour(self.program, mutated)

    def test_replace_read_array(self):
        mutated, mutation = replace_read_array(self.program, "s2", "B", "A")
        assert mutation.kind == "wrong-array"
        assert changes_behaviour(self.program, mutated)

    def test_replace_read_array_missing(self):
        with pytest.raises(TransformError):
            replace_read_array(self.program, "s2", "nonexistent", "A")

    def test_change_operator(self):
        mutated, mutation = change_operator(self.program, "s1", "+", "-")
        assert mutation.kind == "operator"
        assert changes_behaviour(self.program, mutated)

    def test_change_operator_missing(self):
        with pytest.raises(TransformError):
            change_operator(self.program, "s1", "/", "*")

    def test_shrink_loop_bound(self):
        mutated, mutation = shrink_loop_bound(self.program, "s2", delta=2)
        assert mutation.kind == "loop-bound"
        assert changes_behaviour(self.program, mutated)

    def test_mutations_detected_by_checker(self):
        mutated, _ = perturb_read_index(self.program, "s1", occurrence=0, delta=1)
        assert not check_equivalence(self.program, mutated).equivalent
        mutated, _ = change_operator(self.program, "s2", "+", "-")
        assert not check_equivalence(self.program, mutated).equivalent


class TestRandomMutation:
    def test_random_mutations_are_reported_and_break_equivalence(self):
        program = parse_program(SOURCE)
        for seed in range(6):
            mutated, mutation = random_mutation(program, random.Random(seed))
            assert isinstance(mutation, Mutation)
            result = check_equivalence(program, mutated, check_preconditions=False)
            assert not result.equivalent, f"mutation {mutation} was not detected"

    def test_random_mutation_deterministic_for_seed(self):
        program = parse_program(SOURCE)
        first = random_mutation(program, random.Random(42))[1]
        second = random_mutation(program, random.Random(42))[1]
        assert first.kind == second.kind and first.label == second.label
