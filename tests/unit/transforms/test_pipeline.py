"""Unit tests for the random transformation pipeline."""

import random

import pytest

from repro.lang import outputs_equal, random_input_provider, run_program
from repro.transforms import apply_pipeline, apply_random_transforms, loop_reversal, loop_split
from repro.workloads import RandomProgramGenerator, fig1_program


class TestApplyRandomTransforms:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_pipeline_preserves_behaviour(self, seed):
        generator = RandomProgramGenerator(seed=seed, stages=3, size=24)
        original = generator.generate()
        transformed, steps = apply_random_transforms(original, random.Random(seed), steps=4)
        assert steps, "expected at least one applicable transformation"
        provider = random_input_provider(seed)
        assert outputs_equal(run_program(original, provider), run_program(transformed, provider))

    def test_disallowing_algebraic_steps(self):
        generator = RandomProgramGenerator(seed=5, stages=3, size=24)
        original = generator.generate()
        _, steps = apply_random_transforms(
            original, random.Random(5), steps=6, allow_algebraic=False
        )
        assert all(step.name != "algebraic-reassociation" for step in steps)

    def test_allowed_subset(self):
        generator = RandomProgramGenerator(seed=6, stages=3, size=24)
        original = generator.generate()
        _, steps = apply_random_transforms(
            original, random.Random(6), steps=5, allowed=["loop-reversal"]
        )
        assert all(step.name == "loop-reversal" for step in steps)

    def test_step_records_have_details(self):
        generator = RandomProgramGenerator(seed=7, stages=2, size=16)
        original = generator.generate()
        _, steps = apply_random_transforms(original, random.Random(7), steps=2)
        for step in steps:
            assert step.name and step.detail
            assert step.name in repr(step)


class TestApplyPipeline:
    def test_explicit_pipeline(self):
        program = fig1_program("a", 32)
        transformed = apply_pipeline(
            program,
            [
                (loop_reversal, {"label": "s1"}),
                (loop_split, {"label": "s3", "at": 16}),
            ],
        )
        provider = random_input_provider(1)
        assert outputs_equal(run_program(program, provider), run_program(transformed, provider))
        assert transformed != program
