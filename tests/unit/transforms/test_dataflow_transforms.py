"""Unit tests for expression propagation (forward substitution / temporary introduction)."""

import pytest

from repro.lang import outputs_equal, parse_program, random_input_provider, run_program
from repro.transforms import TransformError, forward_substitution, introduce_temporary


WITH_TEMP = """
f(int A[], int B[], int C[]) {
    int k, t[16];
    for (k = 0; k < 16; k++)
s1:     t[k] = A[k] + B[2*k];
    for (k = 0; k < 16; k++)
s2:     C[k] = t[k] + B[k];
}
"""


def behaves_like(original, transformed, seed=3):
    provider = random_input_provider(seed)
    return outputs_equal(run_program(original, provider), run_program(transformed, provider))


class TestForwardSubstitution:
    def test_eliminates_temporary(self):
        original = parse_program(WITH_TEMP)
        transformed = forward_substitution(original, "t")
        assert "t" not in [d.name for d in transformed.locals]
        assert len(transformed.assignments()) == 1
        assert behaves_like(original, transformed)

    def test_shifted_write_index(self):
        source = """
        f(int A[], int C[]) {
            int k, t[20];
            for (k = 0; k < 16; k++)
        s1:     t[k + 2] = A[k] + 1;
            for (k = 0; k < 16; k++)
        s2:     C[k] = t[k + 2];
        }
        """
        original = parse_program(source)
        transformed = forward_substitution(original, "t")
        assert behaves_like(original, transformed)

    def test_reversed_write_index(self):
        source = """
        f(int A[], int C[]) {
            int k, t[16];
            for (k = 0; k < 16; k++)
        s1:     t[15 - k] = A[k];
            for (k = 0; k < 16; k++)
        s2:     C[k] = t[k];
        }
        """
        original = parse_program(source)
        transformed = forward_substitution(original, "t")
        assert behaves_like(original, transformed)

    def test_rejects_output_arrays(self):
        original = parse_program(WITH_TEMP)
        with pytest.raises(TransformError):
            forward_substitution(original, "C")

    def test_rejects_multiple_definitions(self):
        source = """
        f(int A[], int C[]) {
            int k, t[16];
            for (k = 0; k < 8; k++)  s1: t[k] = A[k];
            for (k = 8; k < 16; k++) s2: t[k] = A[k + 1];
            for (k = 0; k < 16; k++) s3: C[k] = t[k];
        }
        """
        with pytest.raises(TransformError):
            forward_substitution(parse_program(source), "t")

    def test_rejects_scaled_write_index(self):
        source = """
        f(int A[], int C[]) {
            int k, t[32];
            for (k = 0; k < 16; k++) s1: t[2*k] = A[k];
            for (k = 0; k < 16; k++) s2: C[k] = t[2*k];
        }
        """
        with pytest.raises(TransformError):
            forward_substitution(parse_program(source), "t")


class TestIntroduceTemporary:
    def test_introduces_temporary_for_subexpression(self):
        source = "f(int A[], int B[], int C[]) { int k; for(k=0;k<16;k++) s1: C[k] = (A[k] + B[k]) + B[2*k]; }"
        original = parse_program(source)
        transformed = introduce_temporary(original, "s1", (1,), "pre")
        assert "pre" in [d.name for d in transformed.locals]
        assert len(transformed.assignments()) == 2
        assert behaves_like(original, transformed)

    def test_roundtrip_with_forward_substitution(self):
        source = "f(int A[], int B[], int C[]) { int k; for(k=0;k<16;k++) s1: C[k] = (A[k] + B[k]) + B[2*k]; }"
        original = parse_program(source)
        expanded = introduce_temporary(original, "s1", (1,), "pre")
        collapsed = forward_substitution(expanded, "pre")
        assert behaves_like(original, collapsed)

    def test_rejects_existing_name(self):
        original = parse_program(WITH_TEMP)
        with pytest.raises(TransformError):
            introduce_temporary(original, "s2", (1,), "t")

    def test_rejects_constants(self):
        source = "f(int A[], int C[]) { int k; for(k=0;k<16;k++) s1: C[k] = A[k] + 3; }"
        with pytest.raises(TransformError):
            introduce_temporary(parse_program(source), "s1", (2,), "pre")

    def test_nested_loop_temporary(self):
        source = """
        f(int A[4][4], int C[4][4]) {
            int i, j;
            for (i = 0; i < 4; i++)
                for (j = 0; j < 4; j++)
        s1:         C[i][j] = (A[i][j] + A[j][i]) + 1;
        }
        """
        original = parse_program(source)
        transformed = introduce_temporary(original, "s1", (1,), "pre")
        assert behaves_like(original, transformed)
