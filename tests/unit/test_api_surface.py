"""Snapshot test: the public API surface must not drift unreviewed.

``tools/api_surface.py`` renders the exported names and parameter lists of
``repro.verifier``, ``repro.checker`` and ``repro.service``; the committed
snapshot ``tools/api_surface.txt`` is the reviewed surface.  An intentional
API change is shipped by re-running ``python tools/api_surface.py --update``
and committing the refreshed snapshot together with the code change.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
TOOL_PATH = os.path.join(REPO_ROOT, "tools", "api_surface.py")
SNAPSHOT_PATH = os.path.join(REPO_ROOT, "tools", "api_surface.txt")


def _load_tool():
    spec = importlib.util.spec_from_file_location("api_surface", TOOL_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_api_surface_matches_snapshot():
    tool = _load_tool()
    with open(SNAPSHOT_PATH, "r", encoding="utf-8") as handle:
        expected = handle.read()
    current = tool.render_surface()
    assert current == expected, (
        "The public API surface drifted from tools/api_surface.txt.\n"
        "If the change is intentional, run `python tools/api_surface.py --update` "
        "and commit the refreshed snapshot."
    )


def test_surface_covers_the_session_api():
    # The snapshot must actually monitor the new surface, not an empty file.
    with open(SNAPSHOT_PATH, "r", encoding="utf-8") as handle:
        snapshot = handle.read()
    for needle in (
        "module repro.verifier",
        "class Verifier",
        "class CheckOptions",
        "class CompiledProgram",
        "def check_equivalence",
        "class VerificationJob",
    ):
        assert needle in snapshot, needle
