#!/usr/bin/env python3
"""Reproduce the paper's running example (Fig. 1, Fig. 2, Fig. 5, Section 6.1).

The script checks all pairs of the four program versions of Fig. 1, prints the
ADDG inventory of each version (Fig. 2), and shows the diagnostics generated
for the erroneous version (d) — which point at statements v1/v3 and at the
index expression of ``buf``, as in Section 6.1 of the paper.

Run with::

    python examples/verify_fig1.py [N]
"""

import sys

from repro.addg import addg_to_dot, build_addg
from repro.checker import check_equivalence
from repro.workloads import fig1_program


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    versions = {name: fig1_program(name, n) for name in "abcd"}

    print(f"Fig. 1 example with N = {n}")
    print()
    print("ADDG inventory (Fig. 2):")
    for name, program in versions.items():
        addg = build_addg(program)
        operators = ", ".join(op.name for op in addg.operator_nodes())
        print(
            f"  version ({name}): {len(addg.statements)} statements, "
            f"{addg.node_count()} nodes, {addg.edge_count()} edges; operators: {operators}"
        )
    print()

    expected = {
        ("a", "b"): True,
        ("a", "c"): True,
        ("b", "c"): True,
        ("a", "d"): False,
        ("b", "d"): False,
        ("c", "d"): False,
    }
    for (left, right), should_be in expected.items():
        result = check_equivalence(versions[left], versions[right])
        status = "EQUIVALENT" if result.equivalent else "NOT EQUIVALENT"
        marker = "ok" if result.equivalent == should_be else "UNEXPECTED"
        print(
            f"  ({left}) vs ({right}): {status:16s} [{marker}]  "
            f"{result.stats.paths_checked} paths, {result.stats.elapsed_seconds:.2f} s"
        )
    print()

    print("Diagnostics for (a) vs (d)  [Section 6.1]:")
    result = check_equivalence(versions["a"], versions["d"])
    for diagnostic in result.diagnostics:
        print(diagnostic.format())
        print()

    # Write the ADDGs of (a) and (d) as DOT files for visual inspection.
    for name in ("a", "d"):
        path = f"fig1_{name}.dot"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(addg_to_dot(build_addg(versions[name]), f"fig1_{name}"))
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
