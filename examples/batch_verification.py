#!/usr/bin/env python3
"""Batch verification: sweep a corpus of pairs with caching and workers.

The script builds a mixed corpus — two DSP kernels, a handful of generated
equivalence-preserving pairs and a couple of deliberately buggy pairs — runs
it through the batch service twice (cold, then warm from the result cache),
writes a JSONL report and prints the aggregate, demonstrating the layer the
``repro-eqcheck batch`` subcommand wraps.

Run with::

    python examples/batch_verification.py [jobs]
"""

import sys
import tempfile
import time

from repro.service import (
    BatchExecutor,
    CorpusSpec,
    ResultCache,
    aggregate_results,
    build_corpus,
    format_summary,
    write_report,
)


def main() -> None:
    generated = int(sys.argv[1]) if len(sys.argv) > 1 else 6

    spec = CorpusSpec(
        kernels=("downsample", "wavelet_lift"),
        generated=generated,
        buggy=2,
        size=24,
        transform_steps=3,
    )
    jobs = build_corpus(spec)
    print(f"corpus: {len(jobs)} job(s)")
    for job in jobs:
        expectation = "equivalent" if job.expected_equivalent else "NOT equivalent"
        print(f"  {job.name:<28} expected {expectation}")

    with tempfile.TemporaryDirectory(prefix="eqcheck-cache-") as cache_dir:
        cache = ResultCache(cache_dir)
        executor = BatchExecutor(cache=cache, timeout=120.0)

        print("\n=== cold run (empty cache) ===")
        started = time.perf_counter()
        results = executor.run(jobs)
        cold_seconds = time.perf_counter() - started
        summary = write_report("batch_report.jsonl", results, cache.stats)
        print(format_summary(summary))
        print(f"report written to batch_report.jsonl ({cold_seconds:.3f} s)")

        print("\n=== warm run (content-addressed cache) ===")
        started = time.perf_counter()
        results = executor.run(jobs)
        warm_seconds = time.perf_counter() - started
        print(format_summary(aggregate_results(results, cache.stats)))
        speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        print(f"warm run took {warm_seconds:.3f} s ({speedup:.0f}x faster than cold)")

    mismatches = [r.name for r in results if r.matches_expectation is False]
    if mismatches:
        print("UNEXPECTED verdicts:", ", ".join(mismatches))
        sys.exit(1)
    print("\nall verdicts matched their expectations")


if __name__ == "__main__":
    main()
