#!/usr/bin/env python3
"""Focused checking: restricting the check and declaring correspondences (Section 6.1).

Large designs are rarely verified in one go.  The paper's tool accepts
optional inputs that focus the check: a subset of the output variables, and
declared correspondences between intermediate variables of the two programs,
which act as cut points (each correspondence is verified separately and then
reused as a leaf during the main traversal).  This example shows both on a
two-output wavelet kernel and measures the effect on the amount of work.

Run with::

    python examples/focused_checking.py
"""

from repro.checker import check_equivalence
from repro.lang import parse_program, program_to_text
from repro.workloads import kernel_pair

TWO_STAGE_ORIGINAL = """
#define N 128
pipelinef(int x[], int y[], int z[])
{
    int i, stage1[N];
    for (i = 0; i < N; i++)
s1:     stage1[i] = x[i] + x[i + 1];
    for (i = 0; i < N; i++)
s2:     y[i] = stage1[i] + 1;
    for (i = 0; i < N; i++)
s3:     z[i] = stage1[N - 1 - i] * 2;
}
"""

TWO_STAGE_TRANSFORMED = """
#define N 128
pipelinef(int x[], int y[], int z[])
{
    int i, acc[N];
    for (i = N - 1; i >= 0; i--)
t1:     acc[i] = x[i + 1] + x[i];
    for (i = 0; i < N; i++)
t2:     y[i] = acc[i] + 1;
    for (i = 0; i < N; i++)
t3:     z[i] = acc[N - 1 - i] * 2;
}
"""


def main() -> None:
    original = parse_program(TWO_STAGE_ORIGINAL)
    transformed = parse_program(TWO_STAGE_TRANSFORMED)
    print(program_to_text(original))
    print(program_to_text(transformed))

    print("Full check (both outputs):")
    full = check_equivalence(original, transformed)
    print(full.summary())
    print()

    print("Focused on output 'y' only:")
    focused = check_equivalence(original, transformed, outputs=["y"])
    print(focused.summary())
    print()

    print("With the correspondence stage1 <-> acc declared (cut point):")
    with_cut = check_equivalence(
        original, transformed, correspondences=[("stage1", "acc")]
    )
    print(with_cut.summary())
    print(
        f"\npaths checked: full={full.stats.paths_checked}, "
        f"focused={focused.stats.paths_checked}, with cut={with_cut.stats.paths_checked}"
    )

    # Focused checking also sharpens diagnostics on a broken kernel.
    pair = kernel_pair("wavelet_lift", n=64)
    from repro.transforms import perturb_read_index

    broken, mutation = perturb_read_index(pair.transformed, "m3", occurrence=1, delta=2)
    print(f"\nInjected error into the wavelet kernel: {mutation}")
    only_s = check_equivalence(pair.original, broken, outputs=["s"])
    print("Check focused on the affected output 's':")
    print(only_s.summary())


if __name__ == "__main__":
    main()
