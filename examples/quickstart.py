#!/usr/bin/env python3
"""Quickstart: verify a simple loop + algebraic transformation in a few lines.

Run with::

    python examples/quickstart.py
"""

from repro.checker import check_equivalence
from repro.lang import program_to_text, parse_program

ORIGINAL = """
#define N 256
scale_add(int A[], int B[], int C[])
{
    int k, tmp[N];
    for (k = 0; k < N; k++)
s1:     tmp[k] = A[k] + B[2*k];
    for (k = 0; k < N; k++)
s2:     C[k] = tmp[k] + A[k+1];
}
"""

# The transformed version eliminates the temporary (expression propagation),
# reverses the loop (loop transformation) and reorders the additions
# (algebraic transformation relying on associativity + commutativity).
TRANSFORMED = """
#define N 256
scale_add(int A[], int B[], int C[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     C[k] = (A[k+1] + B[2*k]) + A[k];
}
"""

# An incorrectly transformed version: the designer mistyped one index.
BROKEN = """
#define N 256
scale_add(int A[], int B[], int C[])
{
    int k;
    for (k = N-1; k >= 0; k--)
t1:     C[k] = (A[k+1] + B[2*k+1]) + A[k];
}
"""


def main() -> None:
    original = parse_program(ORIGINAL)
    transformed = parse_program(TRANSFORMED)
    broken = parse_program(BROKEN)

    print("=== original ===")
    print(program_to_text(original))
    print("=== transformed ===")
    print(program_to_text(transformed))

    result = check_equivalence(original, transformed)
    print("Verdict for the correct transformation:")
    print(result.summary())
    print()

    result = check_equivalence(original, broken)
    print("Verdict for the broken transformation:")
    print(result.summary())


if __name__ == "__main__":
    main()
