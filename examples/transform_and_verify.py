#!/usr/bin/env python3
"""Apply the transformation engine to a DSP kernel and verify the result.

The script takes the FIR-filter kernel from the workload suite, applies a
pipeline of loop and algebraic transformations with :mod:`repro.transforms`,
prints the transformed source, and verifies it against the original with the
equivalence checker — the a-posteriori verification flow the paper advocates.

Run with::

    python examples/transform_and_verify.py [seed]
"""

import random
import sys

from repro.checker import check_equivalence
from repro.lang import program_to_text
from repro.transforms import apply_random_transforms
from repro.workloads import RandomProgramGenerator, kernel_pair


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    # Part 1: a curated kernel pair from the suite.
    pair = kernel_pair("matvec", rows=12, cols=6)
    print("=== matvec: original ===")
    print(program_to_text(pair.original))
    print("=== matvec: hand-transformed variant ===")
    print(program_to_text(pair.transformed))
    result = check_equivalence(pair.original, pair.transformed)
    print(result.summary())
    print()

    # Part 2: a randomly generated program, transformed by the engine itself.
    generator = RandomProgramGenerator(seed=seed, stages=4, size=48)
    original = generator.generate()
    rng = random.Random(seed)
    transformed, steps = apply_random_transforms(original, rng, steps=4)
    print("=== generated program ===")
    print(program_to_text(original))
    print("=== after the transformation pipeline ===")
    for step in steps:
        print(f"  applied: {step.name} ({step.detail})")
    print(program_to_text(transformed))
    result = check_equivalence(original, transformed)
    print(result.summary())


if __name__ == "__main__":
    main()
