#!/usr/bin/env python3
"""Error injection and diagnostics: what the designer sees when a transformation is wrong.

The script takes a correctly transformed kernel, injects a typical
index-expression error with the mutation engine, and shows the diagnostics the
checker produces: the mismatching output-input mappings, the domain on which
they differ, and the suspect statements / variables (Section 6.1 of the
paper).  It also demonstrates *focused checking* by restricting the check to a
single output array and by declaring an intermediate-array correspondence.

Run with::

    python examples/error_diagnosis.py
"""

from repro.checker import check_equivalence
from repro.lang import program_to_text
from repro.transforms import perturb_read_index
from repro.workloads import fig1_program, kernel_pair


def main() -> None:
    # Part 1: the paper's own erroneous version (d).
    original = fig1_program("a", 1024)
    erroneous = fig1_program("d", 1024)
    print("Checking the paper's erroneous version (d) against the original (a):")
    result = check_equivalence(original, erroneous)
    print(result.summary())
    print()

    # Part 2: inject an index error into the wavelet kernel and diagnose it.
    pair = kernel_pair("wavelet_lift", n=64)
    broken, mutation = perturb_read_index(pair.transformed, "m3", occurrence=1, delta=1)
    print(f"Injected error: {mutation}")
    print(program_to_text(broken))
    result = check_equivalence(pair.original, broken)
    print(result.summary())
    print()

    # Part 3: focused checking — restrict the check to the 's' output only.
    print("Focused checking (output 's' only):")
    result = check_equivalence(pair.original, broken, outputs=["s"])
    print(result.summary())


if __name__ == "__main__":
    main()
