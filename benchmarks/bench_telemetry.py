"""Experiment E13: the cost of telemetry instrumentation.

The observability layer (`repro.telemetry`) threads span and counter
instrumentation through the frontend, the traversal engine, the Presburger
operation cache and the batch executor.  Its contract is that the
*disabled* path — a single attribute load per site and a shared no-op
span object — is effectively free: the budget is < 2% end-to-end overhead
on a representative verification workload.

This harness runs the same variant corpus as E12 three ways — telemetry
disabled, enabled with tracing, and disabled again — and

* asserts the disabled overhead stays inside a generous multiple of the
  budget (8% here: CI machines are noisy and single runs of a ~100 ms
  workload jitter by several percent; the structural no-allocation
  guarantees live in ``tests/unit/telemetry/test_overhead.py``),
* reports the enabled-path cost for context (it is allowed to be
  expensive — tracing is opt-in), and
* asserts enabling actually recorded the spans the overhead pays for.
"""

import time

import pytest

from repro import telemetry
from repro.lang import program_to_text
from repro.presburger import opcache
from repro.verifier import Verifier
from repro.workloads import RandomProgramGenerator

from conftest import run_once

VARIANT_COUNT = 8


@pytest.fixture(scope="module")
def variant_corpus():
    generator = RandomProgramGenerator(seed=7, stages=4, size=24)
    pairs = generator.generate_variants(VARIANT_COUNT, transform_steps=2)
    original_text = program_to_text(pairs[0].original)
    variant_texts = [program_to_text(pair.transformed) for pair in pairs]
    return original_text, variant_texts


def _sweep(original_text, variant_texts):
    opcache.reset()
    verifier = Verifier()
    return [verifier.check(original_text, text) for text in variant_texts]


def _timed_sweep(corpus):
    started = time.perf_counter()
    results = _sweep(*corpus)
    return time.perf_counter() - started, results


def bench_e13_disabled_overhead(benchmark, variant_corpus, capsys):
    """Disabled telemetry must cost < 2% (asserted with slack for jitter)."""
    telemetry.disable()
    telemetry.reset()

    # Warm-up: imports, interning tables, pyc caching.
    _sweep(*variant_corpus)

    # Interleave disabled/disabled measurements so drift (thermal, cache)
    # hits both sides equally; take the best of each to cut scheduler noise.
    baseline = min(_timed_sweep(variant_corpus)[0] for _ in range(3))
    probe = min(_timed_sweep(variant_corpus)[0] for _ in range(3))
    overhead = probe / baseline - 1.0

    with capsys.disabled():
        print(
            f"\n[E13] disabled-path spread: baseline {baseline * 1e3:.1f} ms, "
            f"probe {probe * 1e3:.1f} ms ({overhead:+.2%})"
        )
    # Both runs are disabled, so this measures run-to-run noise plus the
    # instrumentation's fixed attribute-load cost.  The 2% design budget
    # gets 4x slack against CI jitter; gross regressions (a lock or an
    # allocation on the disabled path) blow well past this.
    assert overhead < 0.08, f"disabled telemetry overhead {overhead:.2%} exceeds budget"

    results = run_once(benchmark, _sweep, *variant_corpus)
    assert all(result.equivalent for result in results)


def bench_e13_enabled_cost_for_context(benchmark, variant_corpus, capsys):
    """Enabled tracing: measured for context, only sanity-bounded."""
    telemetry.disable()
    telemetry.reset()
    _sweep(*variant_corpus)  # warm-up
    disabled_seconds = min(_timed_sweep(variant_corpus)[0] for _ in range(3))

    telemetry.enable()
    try:
        enabled_seconds, results = _timed_sweep(variant_corpus)
        assert all(result.equivalent for result in results)
        span_names = {record.name for record in telemetry.spans()}
        assert "verifier.check" in span_names
        assert "engine.traverse" in span_names
        assert any(name.startswith("opcache.") for name in span_names)
        assert all(result.stats.phase_seconds for result in results)
    finally:
        telemetry.disable()
        telemetry.reset()

    with capsys.disabled():
        print(
            f"\n[E13] enabled tracing: {enabled_seconds * 1e3:.1f} ms vs "
            f"{disabled_seconds * 1e3:.1f} ms disabled "
            f"({enabled_seconds / disabled_seconds:.2f}x)"
        )
    # Opt-in tracing may cost real time, but an order of magnitude would
    # point at a hot-path mistake (e.g. spans on opcache *hits*).
    assert enabled_seconds < disabled_seconds * 10

    telemetry.enable()
    try:
        results = run_once(benchmark, _sweep, *variant_corpus)
        assert all(result.equivalent for result in results)
    finally:
        telemetry.disable()
        telemetry.reset()
