"""Experiment E8: timing of the extended method (Section 6.2).

The paper reports "no significant degradation" over the basic method and
verification times "consistently ... less than 100 seconds" on codes whose
control complexity and ADDG sizes are comparable to real-life application
kernels.  This harness times the extended method over the DSP kernel suite
(all of which involve algebraic transformations except ``downsample``) and
asserts the qualitative claim: every kernel verifies, well under the bound.
"""

import pytest

from repro.checker import check_addgs, check_equivalence
from repro.addg import build_addg
from repro.verifier import Verifier
from repro.workloads import kernel_pair

from conftest import run_once

KERNEL_SIZES = {
    "fir": dict(n=64, taps=8),
    "conv2d": dict(rows=12, cols=12),
    "matvec": dict(rows=16, cols=8),
    "wavelet_lift": dict(n=128),
    "sad": dict(blocks=16, width=4),
    "prefix_sum": dict(n=256),
    "downsample": dict(n=128),
}


@pytest.mark.parametrize("name", sorted(KERNEL_SIZES))
def bench_e8_extended_method_on_kernel(benchmark, name, paper_threshold_seconds):
    pair = kernel_pair(name, **KERNEL_SIZES[name])
    result = run_once(benchmark, check_equivalence, pair.original, pair.transformed, rounds=1)
    assert result.equivalent, f"{name}:\n{result.summary()}"
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e8_checker_only_without_frontend(benchmark, paper_threshold_seconds):
    """Time the equivalence check alone (ADDGs pre-extracted), as the paper's tool does."""
    pair = kernel_pair("conv2d", rows=12, cols=12)
    original = build_addg(pair.original)
    transformed = build_addg(pair.transformed)
    result = run_once(benchmark, check_addgs, original, transformed, rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e8_engine_only_via_compiled_programs(benchmark, paper_threshold_seconds):
    """Time the engine alone through the session API: compile once, check warm.

    The :class:`~repro.verifier.Verifier` compiles both sides outside the
    measured region, so the benchmarked call pays only the synchronized
    traversal — ``frontend_seconds`` must be (close to) zero.
    """
    pair = kernel_pair("conv2d", rows=12, cols=12)
    verifier = Verifier()
    for program in (pair.original, pair.transformed):
        compiled = verifier.compile(program)
        compiled.dataflow_issues, compiled.addg  # prepay both lazy frontend stages
    result = run_once(benchmark, verifier.check, pair.original, pair.transformed, rounds=1)
    assert result.equivalent
    assert result.stats.engine_seconds < paper_threshold_seconds
    # The frontend was prepaid by compile(); the check itself only pays the
    # cache lookup.
    assert result.stats.frontend_seconds < result.stats.engine_seconds
    benchmark.extra_info["engine_seconds"] = result.stats.engine_seconds


def bench_e8_whole_kernel_suite(benchmark, paper_threshold_seconds):
    """One run over the entire suite: the paper's 'consistently below 100 s' claim."""

    def run_suite():
        results = {}
        for name, sizes in KERNEL_SIZES.items():
            pair = kernel_pair(name, **sizes)
            results[name] = check_equivalence(pair.original, pair.transformed)
        return results

    results = run_once(benchmark, run_suite, rounds=1)
    assert all(result.equivalent for result in results.values())
    assert all(
        result.stats.elapsed_seconds < paper_threshold_seconds for result in results.values()
    )
