"""Experiment E11: scenario engine throughput and end-to-end soundness.

Three stages are measured separately, because they scale differently:

* **generation** — pipeline composition plus oracle labelling (interpreter
  bound, grows with domain size and pipeline depth);
* **verification** — the labelled corpus through the batch executor
  (checker bound, grows with ADDG size);
* **end to end** — the whole fuzz loop, asserting the qualitative outcome
  the subsystem exists for: zero checker-vs-oracle soundness disagreements
  and zero label disputes on a seeded corpus.
"""

import pytest

from repro.scenarios import (
    LABEL_NOT_EQUIVALENT,
    ScenarioSpec,
    build_scenarios,
    corpus_digest,
    scenario_jobs,
)
from repro.service import BatchExecutor, JobStatus, aggregate_results

from conftest import run_once

SPEC = ScenarioSpec(seed=42, pairs=24, max_depth=4, mutation_rate=0.4, size=18)


@pytest.fixture(scope="module")
def corpus():
    return build_scenarios(SPEC)


def bench_e11_scenario_generation(benchmark):
    """Composing pipelines + oracle labelling for a 24-scenario corpus."""
    pairs = run_once(benchmark, build_scenarios, SPEC, rounds=2)
    assert len(pairs) >= SPEC.pairs
    buggy = [p for p in pairs if p.expected_label == LABEL_NOT_EQUIVALENT]
    assert buggy, "expected oracle-validated buggy twins"
    benchmark.extra_info["pairs"] = len(pairs)
    benchmark.extra_info["buggy_twins"] = len(buggy)
    benchmark.extra_info["digest"] = corpus_digest(pairs)[:16]


def bench_e11_scenario_verification(benchmark, corpus):
    """The labelled corpus through the checker, with the confusion matrix."""
    jobs = scenario_jobs(corpus)

    def verify():
        return BatchExecutor(cache=None).run(jobs)

    results = run_once(benchmark, verify, rounds=1)
    assert all(outcome.status == JobStatus.OK for outcome in results)
    summary = aggregate_results(results)
    scenarios = summary["scenarios"]
    assert scenarios["soundness_errors"] == []
    assert scenarios["label_disputes"] == []
    benchmark.extra_info["labelled"] = scenarios["labelled"]
    benchmark.extra_info["confusion"] = scenarios["confusion"]
    benchmark.extra_info["check_seconds_total"] = summary["timing"]["total_seconds"]


def bench_e11_generation_is_deterministic(benchmark):
    """Two generations of the same spec must agree byte for byte."""

    def twice():
        return corpus_digest(build_scenarios(SPEC)), corpus_digest(build_scenarios(SPEC))

    first, second = run_once(benchmark, twice, rounds=1)
    assert first == second
