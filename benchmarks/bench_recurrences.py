"""Experiment E12: cycles (recurrences) in the ADDG.

The paper's closing remark of Section 5.2 states that cycles are handled via
the transitive closure of the cycle's dependence mapping, computable under
conditions that hold in practice.  This harness times (i) the transitive
closure computation itself, and (ii) the end-to-end verification of
recurrence kernels, checking that the cost does not grow with the number of
loop iterations (the recurrence is *not* unrolled).
"""

import pytest

from repro.analysis import dependency_map, statement_contexts
from repro.checker import check_equivalence
from repro.lang.ast import array_reads
from repro.presburger import parse_map, transitive_closure
from repro.workloads import kernel_pair

from conftest import run_once


@pytest.mark.parametrize("size", [64, 512, 4096])
def bench_e12_prefix_sum_size_independence(benchmark, size, paper_threshold_seconds):
    pair = kernel_pair("prefix_sum", n=size)
    result = run_once(benchmark, check_equivalence, pair.original, pair.transformed, rounds=1)
    assert result.equivalent
    assert result.stats.assumption_uses >= 1
    assert result.stats.elapsed_seconds < paper_threshold_seconds
    benchmark.extra_info["iterations"] = size
    benchmark.extra_info["compare_calls"] = result.stats.compare_calls


@pytest.mark.parametrize("name,params", [("fir", dict(n=48, taps=6)), ("matvec", dict(rows=12, cols=8)), ("sad", dict(blocks=12, width=4))])
def bench_e12_accumulation_kernels(benchmark, name, params, paper_threshold_seconds):
    pair = kernel_pair(name, **params)
    result = run_once(benchmark, check_equivalence, pair.original, pair.transformed, rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


@pytest.mark.parametrize("size", [128, 1024, 8192])
def bench_e12_transitive_closure_of_recurrence(benchmark, size):
    relation = parse_map(f"{{ [k] -> [k - 1] : 1 <= k < {size} }}")
    closure, exact = run_once(benchmark, transitive_closure, relation, rounds=3)
    assert exact
    assert closure.contains([size - 1], [0])


def bench_e12_closure_from_extracted_dependence(benchmark):
    pair = kernel_pair("fir", n=32, taps=6)
    contexts = {c.label: c for c in statement_contexts(pair.original)}
    recurrence = contexts["f2"]
    self_read = [r for r in array_reads(recurrence.assignment.rhs) if r.name == "acc"][0]
    dependence = dependency_map(recurrence, self_read)
    closure, exact = run_once(benchmark, transitive_closure, dependence, rounds=3)
    assert exact
