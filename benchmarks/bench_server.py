"""Experiment E11: verification server throughput, warm daemon vs cold processes.

The server's value proposition is amortisation: a long-lived daemon keeps the
frontend artifacts, the Presburger operation cache and the verdict cache hot
across requests, where a per-check process pays interpreter start-up, imports
and a cold checker every single time.  This harness measures both sides over
the small-kernel corpus and doubles as the CI perf gate::

    PYTHONPATH=src python benchmarks/bench_server.py --smoke

which exits non-zero unless the warm server sustains at least
``SPEEDUP_THRESHOLD``x the cold per-process throughput.  A soak mode drives
the daemon with concurrent clients for a fixed duration and reports sustained
req/s, latency percentiles and the warm-state hit rates::

    PYTHONPATH=src python benchmarks/bench_server.py --soak --duration 10 --clients 4

Under pytest (``-o python_files='bench_*.py' -o python_functions='bench_*'``)
the same scenarios run through pytest-benchmark with the qualitative
assertions (verdicts correct, warm pass served without re-checking) attached.
"""

import contextlib
import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.server import ServerClient, ServerConfig, ServerThread
from repro.service import CorpusSpec, JobStatus, build_corpus

from conftest import run_once

SPEEDUP_THRESHOLD = 2.0

#: The production observability configuration (``--log FILE`` at the default
#: info level) may cost at most this much warm-pass throughput.  The latency
#: histograms are always on, so they are part of the baseline by
#: construction; the heavier debug + capture-everything diagnostic setup is
#: reported alongside for context but not gated.
OVERHEAD_THRESHOLD = 1.05

# Small-parameter kernels: the checker's work tracks ADDG shape, not domain
# size, so these keep the workload honest while a cold subprocess per pair
# stays in CI-friendly territory.
CORPUS = CorpusSpec(
    kernels=("fir", "prefix_sum", "downsample"),
    kernel_params={
        "fir": {"n": 12, "taps": 4},
        "prefix_sum": {"n": 12},
        "downsample": {"n": 16},
    },
)


def corpus_jobs():
    return build_corpus(CORPUS)


@pytest.fixture(scope="module", name="jobs")
def jobs_fixture():
    return corpus_jobs()


# --------------------------------------------------------------------------- #
# Cold side: one OS process per check, the pre-server workflow
# --------------------------------------------------------------------------- #
def time_cold_processes(jobs) -> float:
    """Wall-clock one ``repro-eqcheck check`` subprocess per job.

    Every invocation pays interpreter start-up + imports + a fully cold
    checker — exactly what a Makefile looping over pairs used to pay.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="eqcheck-bench-cold-") as directory:
        pairs = []
        for index, job in enumerate(jobs):
            original = os.path.join(directory, f"{index}-orig.c")
            transformed = os.path.join(directory, f"{index}-trans.c")
            with open(original, "w") as handle:
                handle.write(job.original_source)
            with open(transformed, "w") as handle:
                handle.write(job.transformed_source)
            pairs.append((original, transformed))
        started = time.perf_counter()
        for original, transformed in pairs:
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", "check", original, transformed, "--quiet"],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            assert completed.returncode == 0, completed.stderr.decode()
        return time.perf_counter() - started


# --------------------------------------------------------------------------- #
# Warm side: the same jobs against a long-lived daemon
# --------------------------------------------------------------------------- #
def time_warm_server(jobs, passes: int = 1, best_of: int = 1, **config_kwargs):
    """Warm a fresh in-process daemon with one pass, then time *passes* more.

    Returns ``(seconds, stats)`` where *stats* is the server's final counter
    snapshot.  The timed passes are what a client re-verifying a corpus
    against a running daemon experiences: verdict-cache hits over an
    already-hot session pool.  With ``best_of > 1`` the timed block repeats
    and the fastest repetition wins (damps scheduler noise for the
    overhead comparison).  Extra keyword arguments extend the
    :class:`ServerConfig` (e.g. ``log_path=...`` for the observability leg).
    """
    with ServerThread(ServerConfig(port=0, workers=2, **config_kwargs)) as handle:
        with ServerClient(handle.address) as client:
            warmup = client.run_jobs(jobs, timeout=120.0)
            assert all(outcome.status == JobStatus.OK for outcome in warmup)
            best = None
            for _ in range(max(1, best_of)):
                started = time.perf_counter()
                for _ in range(passes):
                    results = client.run_jobs(jobs, timeout=120.0)
                    assert all(outcome.status == JobStatus.OK for outcome in results)
                elapsed = time.perf_counter() - started
                best = elapsed if best is None else min(best, elapsed)
            stats = client.stats()
    return best, stats


def time_observed_warm_server(jobs, passes: int = 1, best_of: int = 1, full: bool = False):
    """Like :func:`time_warm_server` with the observability surface on.

    The default is the production configuration the ``<= 5%`` gate holds:
    ``--log FILE`` at its default info level (one access-log style
    completion event per check).  ``full=True`` is the heavier diagnostic setup —
    debug-level logging plus a zero slow threshold capturing every request
    into the ring — reported for context, not gated (capturing *every*
    request as "slow" is a smoke-test posture, not an operating point).
    """
    kwargs = {"log_level": "debug", "slow_threshold": 0.0} if full else {"log_level": "info"}
    with tempfile.TemporaryDirectory(prefix="eqcheck-bench-obs-") as directory:
        return time_warm_server(
            jobs,
            passes=passes,
            best_of=best_of,
            log_path=os.path.join(directory, "requests.jsonl"),
            **kwargs,
        )


# --------------------------------------------------------------------------- #
# pytest-benchmark entries
# --------------------------------------------------------------------------- #
def bench_e11_cold_process_per_check(benchmark, jobs):
    """Cold baseline: a fresh OS process (and cold caches) for every pair."""
    seconds = run_once(benchmark, time_cold_processes, jobs, rounds=1)
    benchmark.extra_info["jobs"] = len(jobs)
    benchmark.extra_info["seconds_per_check"] = seconds / len(jobs)


def bench_e11_warm_server_pass(benchmark, jobs):
    """Warm pass: the daemon answers the whole corpus from its hot state."""

    def warm():
        return time_warm_server(jobs, passes=1)

    _seconds, stats = run_once(benchmark, warm, rounds=2)
    assert stats["cache_hits"] >= len(jobs)  # the timed pass never re-checked
    benchmark.extra_info["cache_hit_rate"] = stats["cache_hit_rate"]


def bench_e11_observability_overhead(benchmark, jobs):
    """Warm pass with the full observability surface on; must stay ~free."""

    def observed():
        return time_observed_warm_server(jobs, passes=1, full=True)

    _seconds, stats = run_once(benchmark, observed, rounds=2)
    assert stats["request_log"]["events_written"] > 0
    assert stats["request_log"]["degraded"] is False
    assert stats["slow"]["captured"] > 0
    benchmark.extra_info["log_events"] = stats["request_log"]["events_written"]


def bench_e11_concurrent_clients(benchmark, jobs):
    """Four clients pipeline the corpus concurrently at one warm daemon."""

    def soak():
        with ServerThread(ServerConfig(port=0, workers=2)) as handle:
            def one_client():
                with ServerClient(handle.address) as client:
                    return client.run_jobs(jobs, timeout=120.0)

            threads = []
            results = []
            for _ in range(4):
                thread = threading.Thread(target=lambda: results.append(one_client()))
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            return results

    results = run_once(benchmark, soak, rounds=1)
    assert len(results) == 4
    for batch in results:
        assert all(outcome.status == JobStatus.OK for outcome in batch)


# --------------------------------------------------------------------------- #
# Standalone modes: --smoke (CI gate) and --soak (sustained-load report)
# --------------------------------------------------------------------------- #
def _smoke() -> int:
    """CI gate: the warm daemon must beat cold per-process checks >= 2x."""
    jobs = corpus_jobs()
    cold_seconds = time_cold_processes(jobs)
    warm_seconds, stats = time_warm_server(jobs, passes=1)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(f"corpus      : {len(jobs)} kernel pair(s)")
    print(f"cold        : {cold_seconds:.3f} s  (one process per check)")
    print(
        f"warm server : {warm_seconds:.3f} s  "
        f"({stats['cache_hits']} verdict-cache hit(s), "
        f"{stats['checks_executed']} executed)"
    )
    print(f"speedup     : {speedup:.2f}x  (threshold {SPEEDUP_THRESHOLD}x)")
    if speedup < SPEEDUP_THRESHOLD:
        print("FAIL: warm-server speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _timed_block(client, jobs, passes: int) -> float:
    started = time.perf_counter()
    for _ in range(passes):
        results = client.run_jobs(jobs, timeout=120.0)
        assert all(outcome.status == JobStatus.OK for outcome in results)
    return time.perf_counter() - started


def _overhead(passes: int = 4, reps: int = 25) -> int:
    """CI gate: production logging must cost <= 5% warm-pass throughput.

    Three daemons (bare, info-level log, debug log + capture-everything)
    stay alive side by side and the timed blocks *interleave* across them
    for *reps* rounds.  Each round yields one *paired* ratio — its blocks
    run back-to-back within tens of milliseconds, so clock drift and
    scheduler weather hit numerator and denominator alike — and the gate
    holds the median ratio across rounds, which shrugs off the occasional
    round a background task lands on.  Sequential unpaired measurement
    (time all of A, then all of B) lets that same drift masquerade as
    instrumentation cost.  The gated configuration is the one operators
    run (``--log FILE``, info level); the debug + slow-capture diagnostic
    setup is printed for context only.
    """
    jobs = corpus_jobs()
    with tempfile.TemporaryDirectory(prefix="eqcheck-bench-obs-") as directory:
        configs = {
            "base": ServerConfig(port=0, workers=2),
            "info": ServerConfig(
                port=0, workers=2,
                log_path=os.path.join(directory, "info.jsonl"), log_level="info",
            ),
            "full": ServerConfig(
                port=0, workers=2,
                log_path=os.path.join(directory, "debug.jsonl"), log_level="debug",
                slow_threshold=0.0,
            ),
        }
        with contextlib.ExitStack() as stack:
            clients = {}
            for key, config in configs.items():
                handle = stack.enter_context(ServerThread(config))
                clients[key] = stack.enter_context(ServerClient(handle.address))
            for client in clients.values():
                warmup = client.run_jobs(jobs, timeout=120.0)
                assert all(outcome.status == JobStatus.OK for outcome in warmup)
            rounds = {key: [] for key in clients}
            for _ in range(max(1, reps)):
                for key, client in clients.items():
                    rounds[key].append(_timed_block(client, jobs, passes))
            info_stats = clients["info"].stats()
            full_stats = clients["full"].stats()
    ratio = statistics.median(
        info / base for info, base in zip(rounds["info"], rounds["base"])
    )
    full_ratio = statistics.median(
        full / base for full, base in zip(rounds["full"], rounds["base"])
    )
    log_stats = info_stats["request_log"]
    print(
        f"corpus        : {len(jobs)} kernel pair(s), {passes} warm pass(es) per block, "
        f"median of {reps} interleaved paired round(s)"
    )
    print(f"baseline      : {min(rounds['base']):.3f} s best block  (histograms only)")
    print(
        f"observed      : {min(rounds['info']):.3f} s best block  "
        f"({log_stats['events_written']} log event(s) at info level)"
    )
    print(
        f"diagnostic    : {full_ratio:.3f}x  "
        f"({full_stats['request_log']['events_written']} event(s) at debug, "
        f"{full_stats['slow']['captured']} slow capture(s); context, not gated)"
    )
    print(f"overhead      : {ratio:.3f}x  (threshold {OVERHEAD_THRESHOLD}x)")
    if log_stats["degraded"]:
        print("FAIL: request log degraded to stderr during the run", file=sys.stderr)
        return 1
    if ratio > OVERHEAD_THRESHOLD:
        print("FAIL: observability overhead above threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _soak(duration: float, clients: int) -> int:
    """Drive one daemon with *clients* concurrent loops for *duration* s."""
    jobs = corpus_jobs()
    latencies = []
    lock = threading.Lock()
    with ServerThread(ServerConfig(port=0, workers=2)) as handle:
        deadline = time.monotonic() + duration

        def one_client(index: int):
            local = []
            with ServerClient(handle.address) as client:
                position = index  # stagger starting offsets across clients
                while time.monotonic() < deadline:
                    job = jobs[position % len(jobs)]
                    position += 1
                    started = time.perf_counter()
                    outcome = client.check_job(job, timeout=120.0)
                    local.append(time.perf_counter() - started)
                    assert outcome.status == JobStatus.OK
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=one_client, args=(index,)) for index in range(clients)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=duration + 300)
        elapsed = time.monotonic() - started
        with ServerClient(handle.address) as client:
            stats = client.stats()

    if not latencies:
        print("FAIL: no requests completed", file=sys.stderr)
        return 1
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    print(f"clients      : {clients}, duration {elapsed:.1f} s")
    print(f"requests     : {len(latencies)}  ({len(latencies) / elapsed:.1f} req/s)")
    print(f"latency      : p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms")
    print(
        f"warm state   : {stats['checks_executed']} executed, "
        f"{stats['cache_hits']} cache hit(s), {stats['dedup_hits']} dedup hit(s), "
        f"hit rate {stats['cache_hit_rate']:.3f}"
    )
    print(f"faults       : {stats['errors']} error(s), {stats['timeouts']} timeout(s)")
    return 0 if stats["errors"] == 0 else 1


def _main(argv) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="run the CI speedup gate")
    parser.add_argument("--soak", action="store_true", help="run the sustained-load soak")
    parser.add_argument(
        "--overhead", action="store_true", help="run the observability overhead gate"
    )
    parser.add_argument("--duration", type=float, default=10.0, help="soak duration (s)")
    parser.add_argument("--clients", type=int, default=4, help="concurrent soak clients")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    if args.soak:
        return _soak(args.duration, args.clients)
    if args.overhead:
        return _overhead()
    print(__doc__)
    print("run under pytest for the full benchmark suite, or pass --smoke / --soak")
    return 2


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
