"""Experiment E11: verification server throughput, warm daemon vs cold processes.

The server's value proposition is amortisation: a long-lived daemon keeps the
frontend artifacts, the Presburger operation cache and the verdict cache hot
across requests, where a per-check process pays interpreter start-up, imports
and a cold checker every single time.  This harness measures both sides over
the small-kernel corpus and doubles as the CI perf gate::

    PYTHONPATH=src python benchmarks/bench_server.py --smoke

which exits non-zero unless the warm server sustains at least
``SPEEDUP_THRESHOLD``x the cold per-process throughput.  A soak mode drives
the daemon with concurrent clients for a fixed duration and reports sustained
req/s, latency percentiles and the warm-state hit rates::

    PYTHONPATH=src python benchmarks/bench_server.py --soak --duration 10 --clients 4

Under pytest (``-o python_files='bench_*.py' -o python_functions='bench_*'``)
the same scenarios run through pytest-benchmark with the qualitative
assertions (verdicts correct, warm pass served without re-checking) attached.
"""

import os
import statistics
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.server import ServerClient, ServerConfig, ServerThread
from repro.service import CorpusSpec, JobStatus, build_corpus

from conftest import run_once

SPEEDUP_THRESHOLD = 2.0

# Small-parameter kernels: the checker's work tracks ADDG shape, not domain
# size, so these keep the workload honest while a cold subprocess per pair
# stays in CI-friendly territory.
CORPUS = CorpusSpec(
    kernels=("fir", "prefix_sum", "downsample"),
    kernel_params={
        "fir": {"n": 12, "taps": 4},
        "prefix_sum": {"n": 12},
        "downsample": {"n": 16},
    },
)


def corpus_jobs():
    return build_corpus(CORPUS)


@pytest.fixture(scope="module", name="jobs")
def jobs_fixture():
    return corpus_jobs()


# --------------------------------------------------------------------------- #
# Cold side: one OS process per check, the pre-server workflow
# --------------------------------------------------------------------------- #
def time_cold_processes(jobs) -> float:
    """Wall-clock one ``repro-eqcheck check`` subprocess per job.

    Every invocation pays interpreter start-up + imports + a fully cold
    checker — exactly what a Makefile looping over pairs used to pay.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="eqcheck-bench-cold-") as directory:
        pairs = []
        for index, job in enumerate(jobs):
            original = os.path.join(directory, f"{index}-orig.c")
            transformed = os.path.join(directory, f"{index}-trans.c")
            with open(original, "w") as handle:
                handle.write(job.original_source)
            with open(transformed, "w") as handle:
                handle.write(job.transformed_source)
            pairs.append((original, transformed))
        started = time.perf_counter()
        for original, transformed in pairs:
            completed = subprocess.run(
                [sys.executable, "-m", "repro.cli", "check", original, transformed, "--quiet"],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            assert completed.returncode == 0, completed.stderr.decode()
        return time.perf_counter() - started


# --------------------------------------------------------------------------- #
# Warm side: the same jobs against a long-lived daemon
# --------------------------------------------------------------------------- #
def time_warm_server(jobs, passes: int = 1):
    """Warm a fresh in-process daemon with one pass, then time *passes* more.

    Returns ``(seconds, stats)`` where *stats* is the server's final counter
    snapshot.  The timed passes are what a client re-verifying a corpus
    against a running daemon experiences: verdict-cache hits over an
    already-hot session pool.
    """
    with ServerThread(ServerConfig(port=0, workers=2)) as handle:
        with ServerClient(handle.address) as client:
            warmup = client.run_jobs(jobs, timeout=120.0)
            assert all(outcome.status == JobStatus.OK for outcome in warmup)
            started = time.perf_counter()
            for _ in range(passes):
                results = client.run_jobs(jobs, timeout=120.0)
                assert all(outcome.status == JobStatus.OK for outcome in results)
            elapsed = time.perf_counter() - started
            stats = client.stats()
    return elapsed, stats


# --------------------------------------------------------------------------- #
# pytest-benchmark entries
# --------------------------------------------------------------------------- #
def bench_e11_cold_process_per_check(benchmark, jobs):
    """Cold baseline: a fresh OS process (and cold caches) for every pair."""
    seconds = run_once(benchmark, time_cold_processes, jobs, rounds=1)
    benchmark.extra_info["jobs"] = len(jobs)
    benchmark.extra_info["seconds_per_check"] = seconds / len(jobs)


def bench_e11_warm_server_pass(benchmark, jobs):
    """Warm pass: the daemon answers the whole corpus from its hot state."""

    def warm():
        return time_warm_server(jobs, passes=1)

    _seconds, stats = run_once(benchmark, warm, rounds=2)
    assert stats["cache_hits"] >= len(jobs)  # the timed pass never re-checked
    benchmark.extra_info["cache_hit_rate"] = stats["cache_hit_rate"]


def bench_e11_concurrent_clients(benchmark, jobs):
    """Four clients pipeline the corpus concurrently at one warm daemon."""

    def soak():
        with ServerThread(ServerConfig(port=0, workers=2)) as handle:
            def one_client():
                with ServerClient(handle.address) as client:
                    return client.run_jobs(jobs, timeout=120.0)

            threads = []
            results = []
            for _ in range(4):
                thread = threading.Thread(target=lambda: results.append(one_client()))
                threads.append(thread)
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            return results

    results = run_once(benchmark, soak, rounds=1)
    assert len(results) == 4
    for batch in results:
        assert all(outcome.status == JobStatus.OK for outcome in batch)


# --------------------------------------------------------------------------- #
# Standalone modes: --smoke (CI gate) and --soak (sustained-load report)
# --------------------------------------------------------------------------- #
def _smoke() -> int:
    """CI gate: the warm daemon must beat cold per-process checks >= 2x."""
    jobs = corpus_jobs()
    cold_seconds = time_cold_processes(jobs)
    warm_seconds, stats = time_warm_server(jobs, passes=1)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(f"corpus      : {len(jobs)} kernel pair(s)")
    print(f"cold        : {cold_seconds:.3f} s  (one process per check)")
    print(
        f"warm server : {warm_seconds:.3f} s  "
        f"({stats['cache_hits']} verdict-cache hit(s), "
        f"{stats['checks_executed']} executed)"
    )
    print(f"speedup     : {speedup:.2f}x  (threshold {SPEEDUP_THRESHOLD}x)")
    if speedup < SPEEDUP_THRESHOLD:
        print("FAIL: warm-server speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _soak(duration: float, clients: int) -> int:
    """Drive one daemon with *clients* concurrent loops for *duration* s."""
    jobs = corpus_jobs()
    latencies = []
    lock = threading.Lock()
    with ServerThread(ServerConfig(port=0, workers=2)) as handle:
        deadline = time.monotonic() + duration

        def one_client(index: int):
            local = []
            with ServerClient(handle.address) as client:
                position = index  # stagger starting offsets across clients
                while time.monotonic() < deadline:
                    job = jobs[position % len(jobs)]
                    position += 1
                    started = time.perf_counter()
                    outcome = client.check_job(job, timeout=120.0)
                    local.append(time.perf_counter() - started)
                    assert outcome.status == JobStatus.OK
            with lock:
                latencies.extend(local)

        threads = [
            threading.Thread(target=one_client, args=(index,)) for index in range(clients)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=duration + 300)
        elapsed = time.monotonic() - started
        with ServerClient(handle.address) as client:
            stats = client.stats()

    if not latencies:
        print("FAIL: no requests completed", file=sys.stderr)
        return 1
    latencies.sort()
    p50 = statistics.median(latencies)
    p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))]
    print(f"clients      : {clients}, duration {elapsed:.1f} s")
    print(f"requests     : {len(latencies)}  ({len(latencies) / elapsed:.1f} req/s)")
    print(f"latency      : p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms")
    print(
        f"warm state   : {stats['checks_executed']} executed, "
        f"{stats['cache_hits']} cache hit(s), {stats['dedup_hits']} dedup hit(s), "
        f"hit rate {stats['cache_hit_rate']:.3f}"
    )
    print(f"faults       : {stats['errors']} error(s), {stats['timeouts']} timeout(s)")
    return 0 if stats["errors"] == 0 else 1


def _main(argv) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="run the CI speedup gate")
    parser.add_argument("--soak", action="store_true", help="run the sustained-load soak")
    parser.add_argument("--duration", type=float, default=10.0, help="soak duration (s)")
    parser.add_argument("--clients", type=int, default=4, help="concurrent soak clients")
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke()
    if args.soak:
        return _soak(args.duration, args.clients)
    print(__doc__)
    print("run under pytest for the full benchmark suite, or pass --smoke / --soak")
    return 2


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
