"""Experiment E13: the cost of witness diagnosis on top of a plain check.

A non-equivalent verdict can be shipped as-is (the historical behaviour) or
diagnosed end to end (:mod:`repro.diagnostics`): sample the Presburger
mismatch sets, replay both programs through the traced interpreter, walk
dependency paths and bisect the transformation trace.  This harness measures
that overhead on a corpus of mutated kernels and asserts the qualitative
contract: every diagnosis confirms its verdict by replay, and the add-on
cost stays within a small multiple of the check itself (the interpreter runs
on shrunken kernel domains are cheap next to the symbolic traversal).
"""

import pytest

from repro.diagnostics import build_failure_report
from repro.scenarios.spec import SMALL_KERNEL_PARAMS
from repro.transforms import perturb_read_index
from repro.transforms.errors import TransformError
from repro.verifier import Verifier
from repro.workloads import kernel_names, kernel_pair

from conftest import run_once


@pytest.fixture(scope="module")
def mutated_kernels():
    """(original, mutated) kernel pairs with one injected read-index error."""
    pairs = []
    for kernel in kernel_names():
        original = kernel_pair(kernel, **SMALL_KERNEL_PARAMS.get(kernel, {})).original
        for assignment in original.assignments():
            if not assignment.label:
                continue
            try:
                mutated, _mutation = perturb_read_index(original, assignment.label)
            except TransformError:
                continue
            pairs.append((kernel, original, mutated))
            break
    assert pairs
    return pairs


def _check_only(pairs):
    verifier = Verifier()
    return [verifier.check(original, mutated) for _name, original, mutated in pairs]


def _check_and_diagnose(pairs):
    verifier = Verifier()
    reports = []
    for _name, original, mutated in pairs:
        result = verifier.check(original, mutated)
        reports.append((result, build_failure_report(original, mutated, result)))
    return reports


def bench_e13_check_only(benchmark, mutated_kernels):
    """Baseline: the plain checks, no diagnosis."""
    results = run_once(benchmark, _check_only, mutated_kernels, rounds=2)
    assert all(not result.equivalent for result in results)


def bench_e13_check_and_diagnose(benchmark, mutated_kernels):
    """Check + full diagnosis (witness synthesis, replay, dependency paths)."""
    reports = run_once(benchmark, _check_and_diagnose, mutated_kernels, rounds=2)
    for result, report in reports:
        assert not result.equivalent
        assert report.confirmed, "diagnosis failed to confirm a mutated kernel"
    confirmed_points = [
        witness
        for _result, report in reports
        for witness in report.outputs
        if witness.point_confirmed
    ]
    benchmark.extra_info["confirmed_witness_points"] = len(confirmed_points)


def test_diagnosis_overhead_is_bounded(mutated_kernels):
    """Diagnosis must stay within a small multiple of the plain check."""
    import time

    started = time.perf_counter()
    _check_only(mutated_kernels)
    check_seconds = time.perf_counter() - started

    started = time.perf_counter()
    reports = _check_and_diagnose(mutated_kernels)
    diagnose_seconds = time.perf_counter() - started

    assert all(report.confirmed for _result, report in reports)
    # Generous bound: the interpreter replay and point sampling must never
    # dominate the symbolic check by an order of magnitude.
    assert diagnose_seconds <= max(10 * check_seconds, check_seconds + 5.0), (
        f"diagnosis overhead exploded: check {check_seconds:.3f}s vs "
        f"check+diagnose {diagnose_seconds:.3f}s"
    )
