"""Experiment E12: compiled-artifact reuse through the verifier session API.

The design-space-exploration workflow the batch direction targets checks
*many transformed variants against one original*.  The one-shot
:func:`repro.checker.check_equivalence` shim re-runs the whole frontend
(parse + def-use + ADDG extraction) for both sides on every call; a
:class:`repro.verifier.Verifier` session compiles each distinct program once
and replays the cached :class:`~repro.verifier.CompiledProgram` — the paper's
Section 6.2 reuse insight lifted from sub-ADDGs to whole programs.

This harness generates one original with N equivalence-preserving variants
(as source text, the form jobs arrive in), runs the corpus both ways from an
equally cold Presburger operation cache, and asserts that the session (i)
compiles the original exactly once, (ii) returns verdicts and per-output
reports identical to the one-shot calls, and (iii) is measurably faster.
"""

import pytest

from repro.checker import check_equivalence
from repro.lang import program_to_text
from repro.presburger import opcache
from repro.verifier import Verifier
from repro.workloads import RandomProgramGenerator

from conftest import run_once

VARIANT_COUNT = 12


@pytest.fixture(scope="module")
def variant_corpus():
    """One original and its transformed variants, as mini-C source text."""
    generator = RandomProgramGenerator(seed=7, stages=4, size=24)
    pairs = generator.generate_variants(VARIANT_COUNT, transform_steps=2)
    original_text = program_to_text(pairs[0].original)
    variant_texts = [program_to_text(pair.transformed) for pair in pairs]
    # One warm-up check so interning/import costs hit neither measured phase.
    check_equivalence(original_text, variant_texts[0])
    return original_text, variant_texts


def _one_shot(original_text, variant_texts):
    return [check_equivalence(original_text, text) for text in variant_texts]


def _session(original_text, variant_texts):
    verifier = Verifier()
    return verifier, [verifier.check(original_text, text) for text in variant_texts]


def _comparable(result):
    """The verdict-relevant part of a result (stats/timing excluded)."""
    data = result.to_dict()
    data.pop("stats", None)
    return data


def bench_e12_one_shot_variants(benchmark, variant_corpus):
    """Baseline: N one-shot checks, each paying the full frontend twice."""
    original_text, variant_texts = variant_corpus
    opcache.reset()
    results = run_once(benchmark, _one_shot, original_text, variant_texts, rounds=1)
    assert len(results) == VARIANT_COUNT
    benchmark.extra_info["frontend_seconds"] = sum(r.stats.frontend_seconds for r in results)


def bench_e12_session_reuse(benchmark, variant_corpus):
    """Session: the original is compiled once and reused for every variant."""
    original_text, variant_texts = variant_corpus
    opcache.reset()
    verifier, results = run_once(benchmark, _session, original_text, variant_texts, rounds=1)
    assert verifier.compile_misses == VARIANT_COUNT + 1  # the original compiles once
    assert verifier.compile_hits == VARIANT_COUNT - 1
    benchmark.extra_info["frontend_seconds"] = sum(r.stats.frontend_seconds for r in results)


def test_session_reuse_is_faster_with_identical_verdicts(variant_corpus):
    """The acceptance claim, as a plain assertion (no benchmark fixture).

    Both phases start from a cold Presburger operation cache so neither
    inherits warmth from the other; the session's edge is purely the
    compiled-artifact reuse.  The margin is kept modest (5%) because the
    saving is bounded by the original's frontend share; the structural
    assertions (compile counters, frontend-time split) carry the precise
    regression check.
    """
    import time

    original_text, variant_texts = variant_corpus

    opcache.reset()
    started = time.perf_counter()
    one_shot = _one_shot(original_text, variant_texts)
    one_shot_seconds = time.perf_counter() - started

    opcache.reset()
    started = time.perf_counter()
    verifier, session = _session(original_text, variant_texts)
    session_seconds = time.perf_counter() - started

    # Identical verdicts, per-output reports and diagnostics.
    assert [_comparable(r) for r in session] == [_comparable(r) for r in one_shot]
    # The original compiled exactly once across the whole session.
    assert verifier.compile_misses == VARIANT_COUNT + 1
    assert verifier.compile_hits == VARIANT_COUNT - 1
    # The frontend share collapses: one-shot pays ~2N compilations, the
    # session pays N+1.
    one_shot_frontend = sum(r.stats.frontend_seconds for r in one_shot)
    session_frontend = sum(r.stats.frontend_seconds for r in session)
    assert session_frontend < one_shot_frontend / 1.3, (
        f"session frontend ({session_frontend:.3f} s) not amortised versus "
        f"one-shot ({one_shot_frontend:.3f} s)"
    )
    assert session_seconds < one_shot_seconds * 0.95, (
        f"session ({session_seconds:.3f} s) not measurably faster than "
        f"N one-shot checks ({one_shot_seconds:.3f} s)"
    )


def test_stats_split_frontend_plus_engine(variant_corpus):
    """``elapsed_seconds`` is exactly the frontend/engine split's sum."""
    original_text, variant_texts = variant_corpus
    result = check_equivalence(original_text, variant_texts[0])
    assert result.stats.frontend_seconds > 0
    assert result.stats.engine_seconds > 0
    assert result.stats.elapsed_seconds == pytest.approx(
        result.stats.frontend_seconds + result.stats.engine_seconds
    )
