"""Shared helpers for the benchmark harness.

Every benchmark corresponds to an experiment of ``DESIGN.md`` / ``EXPERIMENTS.md``
(the paper has no numbered result tables; its evaluation is the worked Fig. 1
example, the diagnostics walk-through of Section 6.1 and the timing claims of
Section 6.2).  The harness therefore both *times* the checks with
pytest-benchmark and *asserts* the qualitative outcome the paper reports
(which pairs are equivalent, what the diagnostics say, how the cost scales).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, rounds: int = 1, **kwargs):
    """Benchmark *function* with a small fixed number of rounds.

    Equivalence checks are deterministic, so a couple of rounds give a stable
    median without making the harness take tens of minutes.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=rounds, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def paper_threshold_seconds() -> float:
    """The paper's Section 6.2 bound: verification consistently under 100 s."""
    return 100.0
