"""Experiment E10: cost of the algebraic normal form (flattening + matching, Fig. 3).

Sweeps the length of an associative/commutative chain that has been fully
reordered and re-associated between the two program versions; the matching
step has to pair the operands by their output-input mappings, so its cost
grows with the chain length.  Every variant must still verify well within the
paper's bound.
"""

import random

import pytest

from repro.checker import check_equivalence
from repro.lang import parse_program
from repro.transforms import reassociate_chain

from conftest import run_once

CHAIN_LENGTHS = [3, 5, 7, 9]


def _chain_source(length: int) -> str:
    terms = " + ".join(f"A[k + {i}]" for i in range(length))
    return f"""
    f(int A[], int C[])
    {{
        int k;
        for (k = 0; k < 64; k++)
    s1:     C[k] = {terms};
    }}
    """


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def bench_e10_reassociated_chain(benchmark, length, paper_threshold_seconds):
    original = parse_program(_chain_source(length))
    rng = random.Random(length)
    order = list(range(length))
    rng.shuffle(order)
    transformed = reassociate_chain(original, "s1", order, left_assoc=False)
    result = run_once(benchmark, check_equivalence, original, transformed, rounds=1)
    assert result.equivalent
    assert result.stats.matching_operations > 0
    assert result.stats.elapsed_seconds < paper_threshold_seconds
    benchmark.extra_info["chain_length"] = length


@pytest.mark.parametrize("length", [4, 8])
def bench_e10_commuted_products(benchmark, length, paper_threshold_seconds):
    terms = " * ".join(f"A[k + {i}]" for i in range(length))
    original = parse_program(
        f"f(int A[], int C[]) {{ int k; for (k = 0; k < 64; k++) s1: C[k] = {terms}; }}"
    )
    rng = random.Random(length + 100)
    order = list(range(length))
    rng.shuffle(order)
    transformed = reassociate_chain(original, "s1", order, op="*", left_assoc=True)
    result = run_once(benchmark, check_equivalence, original, transformed, rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e10_basic_method_cost_on_same_pair(benchmark):
    """The basic method fails fast on algebraic pairs (it stops at the first mismatch)."""
    original = parse_program(_chain_source(6))
    transformed = reassociate_chain(original, "s1", [5, 4, 3, 2, 1, 0], left_assoc=False)
    result = run_once(benchmark, check_equivalence, original, transformed, method="basic", rounds=3)
    assert not result.equivalent
