"""Experiment E9: scaling of the checking cost with ADDG size, and the tabling ablation.

Section 6.2 argues that the traversal is linear in the size of the larger
ADDG thanks to the tabling of established equivalences, and that the integer
set/relation operations stay cheap because the formulae remain small.  This
harness sweeps the number of stages of generated programs (which grows the
ADDG linearly), times the check, and compares tabling on vs off on a program
with heavily shared sub-ADDGs.
"""

import random

import pytest

from repro.addg import build_addg
from repro.checker import check_addgs, check_equivalence
from repro.lang import ProgramBuilder, parse_program
from repro.presburger import opcache
from repro.transforms import apply_random_transforms, loop_reversal, loop_split
from repro.workloads import RandomProgramGenerator

from conftest import run_once

STAGE_SWEEP = [2, 4, 6, 8]
BREADTH_SWEEP = [2, 4, 8, 16]


@pytest.mark.parametrize("stages", STAGE_SWEEP)
def bench_e9_scaling_with_pipeline_depth(benchmark, stages, paper_threshold_seconds):
    """Depth series: longer and longer chains of dependent stages.

    Because the stages are chained through associative operators, the
    flattening performed by the extended method has to normalise ever longer
    chains: the cost grows faster than the ADDG size here (see
    EXPERIMENTS.md for the discussion).
    """
    generator = RandomProgramGenerator(seed=17, stages=stages, size=48)
    original = generator.generate()
    transformed, _ = apply_random_transforms(original, random.Random(17), steps=3)
    original_addg = build_addg(original)
    transformed_addg = build_addg(transformed)
    result = run_once(benchmark, check_addgs, original_addg, transformed_addg, rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds
    # record the ADDG size alongside the timing so the series can be plotted
    benchmark.extra_info["addg_size"] = max(original_addg.size(), transformed_addg.size())
    benchmark.extra_info["paths"] = result.stats.paths_checked


def _parallel_pipelines_program(width: int, size: int = 48):
    """A program with *width* independent two-stage pipelines feeding one output each.

    The ADDG grows linearly with *width* while the depth of every data-flow
    path stays constant — the regime in which the paper claims (and this
    reproduction confirms) that the traversal cost is linear in the size of
    the larger ADDG.
    """
    builder = ProgramBuilder(
        f"wide{width}",
        params=[("A", [4 * size]), ("B", [4 * size])] + [(f"out{i}", [size]) for i in range(width)],
        locals_=[(f"t{i}", [size]) for i in range(width)],
    )
    for i in range(width):
        with builder.loop("k", 0, size):
            builder.assign(
                f"d{i}",
                builder.at(f"t{i}", builder.v("k")),
                builder.add(builder.at("A", builder.add(builder.v("k"), i)), builder.at("B", builder.v("k"))),
            )
        with builder.loop("k", 0, size):
            builder.assign(
                f"o{i}",
                builder.at(f"out{i}", builder.v("k")),
                builder.add(builder.at(f"t{i}", builder.v("k")), builder.at("A", builder.mul(2, builder.v("k")))),
            )
    return builder.build()


@pytest.mark.parametrize("width", BREADTH_SWEEP)
def bench_e9_scaling_with_addg_breadth(benchmark, width, paper_threshold_seconds):
    """Breadth series: ADDG size grows linearly, path depth stays constant."""
    original = _parallel_pipelines_program(width)
    transformed = original
    for i in range(width):
        transformed = loop_reversal(transformed, f"d{i}")
        transformed = loop_split(transformed, f"o{i}", 24)
    original_addg = build_addg(original)
    transformed_addg = build_addg(transformed)
    result = run_once(benchmark, check_addgs, original_addg, transformed_addg, rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds
    benchmark.extra_info["addg_size"] = max(original_addg.size(), transformed_addg.size())
    benchmark.extra_info["paths"] = result.stats.paths_checked


def _shared_subdag_program(copies: int) -> str:
    """A program whose output re-reads the same intermediate array many times.

    Without tabling every use of ``t`` re-explores the same sub-ADDG; with
    tabling it is explored once (Section 6.2).
    """
    chain = " + ".join(f"t[k + {i}]" for i in range(copies))
    return f"""
    f(int A[], int B[], int C[])
    {{
        int k, t[96];
        for (k = 0; k < 96; k++)
    s1:     t[k] = (A[k] + B[k]) + (A[2*k] + B[k + 3]);
        for (k = 0; k < 32; k++)
    s2:     C[k] = {chain};
    }}
    """


@pytest.mark.parametrize("tabling", [True, False], ids=["tabling-on", "tabling-off"])
def bench_e9_tabling_ablation(benchmark, tabling):
    source = _shared_subdag_program(6)
    program = parse_program(source)
    result = run_once(
        benchmark, check_equivalence, program, program, tabling=tabling, rounds=1
    )
    assert result.equivalent
    benchmark.extra_info["table_hits"] = result.stats.table_hits
    benchmark.extra_info["compare_calls"] = result.stats.compare_calls


@pytest.mark.parametrize("cached", [True, False], ids=["opcache-on", "opcache-off"])
def bench_e9_opcache_ablation(benchmark, cached):
    """Before/after comparison of the Presburger operation cache on a full check.

    Complements the tabling ablation above: tabling reuses established
    equivalences between sub-ADDGs, while the operation cache reuses the
    Presburger operation results *inside* every comparison.  The two layers
    compound — this pair of runs quantifies the lower layer alone.
    """
    source = _shared_subdag_program(6)
    program = parse_program(source)

    def run():
        opcache.reset()
        if cached:
            return check_equivalence(program, program)
        with opcache.disabled():
            return check_equivalence(program, program)

    result = run_once(benchmark, run, rounds=1)
    assert result.equivalent
    benchmark.extra_info["opcache_hits"] = result.stats.opcache_hits
    benchmark.extra_info["intern_hits"] = result.stats.intern_hits


def bench_e9_opcache_reduces_work():
    """Non-timing assertion: the operation cache must fire on a real check.

    The cached and uncached runs must agree on the verdict and on every
    traversal-level counter (the cache may not change what work the engine
    *asks* for, only how often the Presburger core recomputes it), and the
    cached run must record actual hits.
    """
    source = _shared_subdag_program(6)
    program = parse_program(source)
    opcache.reset()
    cached_result = check_equivalence(program, program)
    with opcache.disabled():
        uncached_result = check_equivalence(program, program)
    assert cached_result.equivalent and uncached_result.equivalent
    assert cached_result.stats.opcache_hits > 0
    assert cached_result.stats.intern_hits > 0
    assert uncached_result.stats.opcache_hits == 0
    assert cached_result.stats.compare_calls == uncached_result.stats.compare_calls
    assert cached_result.stats.leaf_comparisons == uncached_result.stats.leaf_comparisons


def bench_e9_tabling_reduces_work():
    """Non-timing assertion: tabling must strictly reduce the number of leaf comparisons."""
    source = _shared_subdag_program(6)
    program = parse_program(source)
    with_tabling = check_equivalence(program, program, tabling=True)
    without_tabling = check_equivalence(program, program, tabling=False)
    assert with_tabling.equivalent and without_tabling.equivalent
    assert with_tabling.stats.table_hits > 0
    assert with_tabling.stats.leaf_comparisons <= without_tabling.stats.leaf_comparisons
    assert with_tabling.stats.compare_calls <= without_tabling.stats.compare_calls
