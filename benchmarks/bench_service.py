"""Experiment E10: batch service throughput, cold versus warm (cached).

The batch layer's value proposition is that re-verifying an already-seen
corpus is near-free: the content-addressed cache replaces every check with a
fingerprint computation plus one JSON read.  This harness runs the same
generated corpus cold (empty cache) and warm (fully populated cache) through
:class:`repro.service.BatchExecutor` and asserts that the warm run (i) hits
the cache for every job and (ii) is measurably faster than the cold run.
"""

import shutil
import tempfile

import pytest

from repro.service import (
    BatchExecutor,
    CorpusSpec,
    JobStatus,
    ResultCache,
    aggregate_results,
    build_corpus,
)

from conftest import run_once

CORPUS = CorpusSpec(generated=12, buggy=4, size=24, transform_steps=3, seed=42)


@pytest.fixture(scope="module")
def corpus_jobs():
    return build_corpus(CORPUS)


@pytest.fixture()
def cache_dir():
    directory = tempfile.mkdtemp(prefix="eqcheck-bench-cache-")
    yield directory
    shutil.rmtree(directory, ignore_errors=True)


def bench_e10_cold_batch(benchmark, corpus_jobs, cache_dir):
    """Cold run: every job is a cache miss and runs the full checker."""

    def cold():
        cache = ResultCache(cache_dir)
        cache.clear()
        return BatchExecutor(cache=cache).run(corpus_jobs), cache

    results, cache = run_once(benchmark, cold, rounds=2)
    assert all(outcome.status == JobStatus.OK for outcome in results)
    assert not any(outcome.cache_hit for outcome in results)
    summary = aggregate_results(results, cache.stats)
    benchmark.extra_info["jobs"] = summary["total_jobs"]
    benchmark.extra_info["check_seconds_total"] = summary["timing"]["total_seconds"]


def bench_e10_warm_batch(benchmark, corpus_jobs, cache_dir):
    """Warm run: the populated cache answers every job without checking."""
    cache = ResultCache(cache_dir)
    cold_results = BatchExecutor(cache=cache).run(corpus_jobs)

    def warm():
        # A fresh cache instance drops the in-memory LRU, so the disk tier
        # (the persistent part of the claim) is what gets exercised.
        return BatchExecutor(cache=ResultCache(cache_dir)).run(corpus_jobs)

    warm_results = run_once(benchmark, warm, rounds=3)
    assert all(outcome.cache_hit for outcome in warm_results)
    for cold_outcome, warm_outcome in zip(cold_results, warm_results):
        assert warm_outcome.equivalent == cold_outcome.equivalent
    benchmark.extra_info["jobs"] = len(warm_results)


def bench_e10_warm_memory_front(benchmark, corpus_jobs, cache_dir):
    """Second lookup through the same instance: served by the in-memory LRU."""
    cache = ResultCache(cache_dir)
    executor = BatchExecutor(cache=cache)
    executor.run(corpus_jobs)
    executor.run(corpus_jobs)  # promote everything into the LRU front

    memory_hits_before = cache.stats.memory_hits
    results = run_once(benchmark, executor.run, corpus_jobs, rounds=3)
    assert all(outcome.cache_hit for outcome in results)
    assert cache.stats.memory_hits > memory_hits_before


def test_warm_batch_is_faster_than_cold(cache_dir, corpus_jobs):
    """The acceptance claim, as a plain assertion (no benchmark fixture).

    Cold minus warm is dominated by the actual equivalence checks, so the
    margin is wide; a 2x factor keeps the assertion robust on loaded CI
    machines while still catching a cache that silently stopped working.
    """
    import time

    cache = ResultCache(cache_dir)
    executor = BatchExecutor(cache=cache)
    started = time.perf_counter()
    cold = executor.run(corpus_jobs)
    cold_seconds = time.perf_counter() - started

    started = time.perf_counter()
    warm = BatchExecutor(cache=ResultCache(cache_dir)).run(corpus_jobs)
    warm_seconds = time.perf_counter() - started

    assert all(outcome.cache_hit for outcome in warm)
    assert [o.equivalent for o in warm] == [o.equivalent for o in cold]
    assert warm_seconds < cold_seconds / 2, (
        f"warm batch ({warm_seconds:.3f} s) not faster than cold ({cold_seconds:.3f} s)"
    )
