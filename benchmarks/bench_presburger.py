"""Substrate micro-benchmarks: the integer set / relation operations (OMEGA substitute).

Section 6.2 argues the cost of the integer tuple operations "can be safely
assumed to be bound by a small constant as the lengths of the formulae ...
are usually small".  These micro-benchmarks measure the operations the
checker performs most often — composition, equality, subtraction with
divisibility constraints, feasibility — at the formula sizes that actually
occur, backing that claim for this reimplementation.

The repeated-composition ablation at the bottom measures the operation cache
of :mod:`repro.presburger.opcache` (interned conjuncts + memoized relation
algebra) against the uncached baseline; the cached run must be at least
1.5x faster.  The same scenario doubles as a CI smoke gate::

    PYTHONPATH=src python benchmarks/bench_presburger.py --smoke

which exits non-zero when the speedup regresses below the threshold.
"""

import sys
import time

import pytest

from repro.presburger import opcache, parse_map, parse_set, transitive_closure

from conftest import run_once


@pytest.fixture(scope="module")
def maps():
    return {
        "affine": parse_map("{ [k] -> [2k - 2] : 1 <= k <= 1024 }"),
        "identity": parse_map("{ [k] -> [k] : 0 <= k < 1024 }"),
        "strided": parse_map("{ [k] -> [k] : exists j : k = 2j and 0 <= k < 1024 }"),
        "piecewise": parse_map("{ [k] -> [2k] : 0 <= k < 512 ; [k] -> [2k] : 512 <= k < 1024 }"),
        "two_dim": parse_map("{ [i, j] -> [i, j - 1] : 0 <= i < 64 and 1 <= j < 16 }"),
    }


def bench_composition(benchmark, maps):
    result = run_once(benchmark, maps["identity"].compose, maps["affine"], rounds=5)
    assert not result.is_empty()


def bench_equality_of_piecewise_maps(benchmark, maps):
    whole = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
    equal = run_once(benchmark, maps["piecewise"].is_equal, whole, rounds=5)
    assert equal


def bench_subtraction_with_divisibility(benchmark, maps):
    def subtract():
        return maps["identity"].subtract(maps["strided"])

    difference = run_once(benchmark, subtract, rounds=5)
    assert not difference.is_empty()
    assert difference.domain().contains([1])
    assert not difference.domain().contains([2])


def bench_domain_and_range(benchmark, maps):
    def both():
        return maps["affine"].domain(), maps["affine"].range()

    domain, range_ = run_once(benchmark, both, rounds=5)
    assert domain.contains([1]) and range_.contains([0])


def bench_feasibility_of_parity_conflict(benchmark):
    even = parse_set("{ [k] : exists i : k = 2i and 0 <= k < 4096 }")
    odd = parse_set("{ [k] : exists i : k = 2i + 1 and 0 <= k < 4096 }")
    empty = run_once(benchmark, even.intersect(odd).is_empty, rounds=5)
    assert empty


def bench_two_dimensional_closure(benchmark, maps):
    closure, exact = run_once(benchmark, transitive_closure, maps["two_dim"], rounds=3)
    assert exact


# --------------------------------------------------------------------------- #
# Operation-cache ablation: repeated composition with the cache on vs off
# --------------------------------------------------------------------------- #
# The scenario mirrors what the checker engine does along every traversal
# path: compose the same dependency relations over and over, invert them, and
# test relations for equality.  With the operation cache enabled only the
# first round pays; the rest are LRU hits on interned operands.
_CHAIN_SOURCES = (
    "{ [k] -> [k + 1] : 0 <= k < 2048 }",
    "{ [k] -> [2k] : 0 <= k < 1024 }",
    "{ [k] -> [k - 4] : 4 <= k < 2048 }",
    "{ [k] -> [k] : exists j : k = 2j and 0 <= k < 2048 }",
)

SPEEDUP_THRESHOLD = 1.5


def _repeated_composition_round(chain, piecewise, whole):
    current = chain[0]
    for relation in chain[1:]:
        current = current.compose(relation)
    current.inverse()
    assert piecewise.is_equal(whole)
    return current


def _run_repeated_composition(iterations: int):
    chain = [parse_map(source) for source in _CHAIN_SOURCES]
    piecewise = parse_map("{ [k] -> [2k] : 0 <= k < 512 ; [k] -> [2k] : 512 <= k < 1024 }")
    whole = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
    result = None
    for _ in range(iterations):
        result = _repeated_composition_round(chain, piecewise, whole)
    return result


def time_repeated_composition(iterations: int = 20):
    """Wall-clock the scenario with the cache disabled, then enabled (cold).

    Returns ``(disabled_seconds, enabled_seconds)``.  Used both by the
    pytest-benchmark entry below and by ``--smoke`` mode.
    """
    with opcache.disabled():
        started = time.perf_counter()
        _run_repeated_composition(iterations)
        disabled_seconds = time.perf_counter() - started
    opcache.reset()  # cold start: the cached run includes its own warmup
    started = time.perf_counter()
    _run_repeated_composition(iterations)
    enabled_seconds = time.perf_counter() - started
    return disabled_seconds, enabled_seconds


def bench_repeated_composition_cached(benchmark):
    opcache.reset()
    result = run_once(benchmark, _run_repeated_composition, 20, rounds=3)
    assert not result.is_empty()
    benchmark.extra_info["opcache_hits"] = opcache.stats().hits


def bench_repeated_composition_uncached(benchmark):
    def run():
        with opcache.disabled():
            return _run_repeated_composition(20)

    result = run_once(benchmark, run, rounds=3)
    assert not result.is_empty()


def bench_cache_ablation_speedup():
    """Non-timing assertion: the cache must keep its >= 1.5x win on this scenario."""
    disabled_seconds, enabled_seconds = time_repeated_composition()
    speedup = disabled_seconds / enabled_seconds if enabled_seconds else float("inf")
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"operation cache speedup degraded to {speedup:.2f}x "
        f"(uncached {disabled_seconds:.3f} s vs cached {enabled_seconds:.3f} s)"
    )


def _smoke() -> int:
    """CI gate: run the ablation once and fail loudly on a perf regression."""
    disabled_seconds, enabled_seconds = time_repeated_composition()
    speedup = disabled_seconds / enabled_seconds if enabled_seconds else float("inf")
    stats = opcache.stats()
    print(f"uncached : {disabled_seconds:.3f} s")
    print(f"cached   : {enabled_seconds:.3f} s  ({stats.hits} hit(s), {stats.misses} miss(es))")
    print(f"speedup  : {speedup:.2f}x  (threshold {SPEEDUP_THRESHOLD}x)")
    if speedup < SPEEDUP_THRESHOLD:
        print("FAIL: operation-cache speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        sys.exit(_smoke())
    print(__doc__)
    print("run under pytest for the full benchmark suite, or pass --smoke")
    sys.exit(2)
