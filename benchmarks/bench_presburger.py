"""Substrate micro-benchmarks: the integer set / relation operations (OMEGA substitute).

Section 6.2 argues the cost of the integer tuple operations "can be safely
assumed to be bound by a small constant as the lengths of the formulae ...
are usually small".  These micro-benchmarks measure the operations the
checker performs most often — composition, equality, subtraction with
divisibility constraints, feasibility — at the formula sizes that actually
occur, backing that claim for this reimplementation.
"""

import pytest

from repro.presburger import parse_map, parse_set, transitive_closure

from conftest import run_once


@pytest.fixture(scope="module")
def maps():
    return {
        "affine": parse_map("{ [k] -> [2k - 2] : 1 <= k <= 1024 }"),
        "identity": parse_map("{ [k] -> [k] : 0 <= k < 1024 }"),
        "strided": parse_map("{ [k] -> [k] : exists j : k = 2j and 0 <= k < 1024 }"),
        "piecewise": parse_map("{ [k] -> [2k] : 0 <= k < 512 ; [k] -> [2k] : 512 <= k < 1024 }"),
        "two_dim": parse_map("{ [i, j] -> [i, j - 1] : 0 <= i < 64 and 1 <= j < 16 }"),
    }


def bench_composition(benchmark, maps):
    result = run_once(benchmark, maps["identity"].compose, maps["affine"], rounds=5)
    assert not result.is_empty()


def bench_equality_of_piecewise_maps(benchmark, maps):
    whole = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
    equal = run_once(benchmark, maps["piecewise"].is_equal, whole, rounds=5)
    assert equal


def bench_subtraction_with_divisibility(benchmark, maps):
    def subtract():
        return maps["identity"].subtract(maps["strided"])

    difference = run_once(benchmark, subtract, rounds=5)
    assert not difference.is_empty()
    assert difference.domain().contains([1])
    assert not difference.domain().contains([2])


def bench_domain_and_range(benchmark, maps):
    def both():
        return maps["affine"].domain(), maps["affine"].range()

    domain, range_ = run_once(benchmark, both, rounds=5)
    assert domain.contains([1]) and range_.contains([0])


def bench_feasibility_of_parity_conflict(benchmark):
    even = parse_set("{ [k] : exists i : k = 2i and 0 <= k < 4096 }")
    odd = parse_set("{ [k] : exists i : k = 2i + 1 and 0 <= k < 4096 }")
    empty = run_once(benchmark, even.intersect(odd).is_empty, rounds=5)
    assert empty


def bench_two_dimensional_closure(benchmark, maps):
    closure, exact = run_once(benchmark, transitive_closure, maps["two_dim"], rounds=3)
    assert exact
