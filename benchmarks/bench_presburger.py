"""Substrate micro-benchmarks: the integer set / relation operations (OMEGA substitute).

Section 6.2 argues the cost of the integer tuple operations "can be safely
assumed to be bound by a small constant as the lengths of the formulae ...
are usually small".  These micro-benchmarks measure the operations the
checker performs most often — composition, equality, subtraction with
divisibility constraints, feasibility — at the formula sizes that actually
occur, backing that claim for this reimplementation.

Three ablations double as CI smoke gates::

    PYTHONPATH=src python benchmarks/bench_presburger.py --smoke

* the operation cache of :mod:`repro.presburger.opcache` (interned
  conjuncts + memoized relation algebra) against the uncached baseline —
  the cached run must be at least 1.5x faster;
* the flat-matrix kernel of :mod:`repro.presburger.kernel` against the
  original object-at-a-time code (``--kernel-ablation``) — flat must be at
  least 1.5x faster on the uncached composition + feasibility workload;
* the persistent cache (``--warm-start``) — a second process sharing the
  same ``--persist-dir`` must finish the workload at least 2x faster than
  the first, cold one.

``--smoke`` runs all three and exits non-zero when any ratio regresses.
"""

import os
import subprocess
import sys
import tempfile
import time

import pytest

from repro.presburger import kernel, opcache, parse_map, parse_set, transitive_closure

from conftest import run_once

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def maps():
    return {
        "affine": parse_map("{ [k] -> [2k - 2] : 1 <= k <= 1024 }"),
        "identity": parse_map("{ [k] -> [k] : 0 <= k < 1024 }"),
        "strided": parse_map("{ [k] -> [k] : exists j : k = 2j and 0 <= k < 1024 }"),
        "piecewise": parse_map("{ [k] -> [2k] : 0 <= k < 512 ; [k] -> [2k] : 512 <= k < 1024 }"),
        "two_dim": parse_map("{ [i, j] -> [i, j - 1] : 0 <= i < 64 and 1 <= j < 16 }"),
    }


def bench_composition(benchmark, maps):
    result = run_once(benchmark, maps["identity"].compose, maps["affine"], rounds=5)
    assert not result.is_empty()


def bench_equality_of_piecewise_maps(benchmark, maps):
    whole = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
    equal = run_once(benchmark, maps["piecewise"].is_equal, whole, rounds=5)
    assert equal


def bench_subtraction_with_divisibility(benchmark, maps):
    def subtract():
        return maps["identity"].subtract(maps["strided"])

    difference = run_once(benchmark, subtract, rounds=5)
    assert not difference.is_empty()
    assert difference.domain().contains([1])
    assert not difference.domain().contains([2])


def bench_domain_and_range(benchmark, maps):
    def both():
        return maps["affine"].domain(), maps["affine"].range()

    domain, range_ = run_once(benchmark, both, rounds=5)
    assert domain.contains([1]) and range_.contains([0])


def bench_feasibility_of_parity_conflict(benchmark):
    even = parse_set("{ [k] : exists i : k = 2i and 0 <= k < 4096 }")
    odd = parse_set("{ [k] : exists i : k = 2i + 1 and 0 <= k < 4096 }")
    empty = run_once(benchmark, even.intersect(odd).is_empty, rounds=5)
    assert empty


def bench_two_dimensional_closure(benchmark, maps):
    closure, exact = run_once(benchmark, transitive_closure, maps["two_dim"], rounds=3)
    assert exact


# --------------------------------------------------------------------------- #
# Operation-cache ablation: repeated composition with the cache on vs off
# --------------------------------------------------------------------------- #
# The scenario mirrors what the checker engine does along every traversal
# path: compose the same dependency relations over and over, invert them, and
# test relations for equality.  With the operation cache enabled only the
# first round pays; the rest are LRU hits on interned operands.
_CHAIN_SOURCES = (
    "{ [k] -> [k + 1] : 0 <= k < 2048 }",
    "{ [k] -> [2k] : 0 <= k < 1024 }",
    "{ [k] -> [k - 4] : 4 <= k < 2048 }",
    "{ [k] -> [k] : exists j : k = 2j and 0 <= k < 2048 }",
)

SPEEDUP_THRESHOLD = 1.5


def _repeated_composition_round(chain, piecewise, whole):
    current = chain[0]
    for relation in chain[1:]:
        current = current.compose(relation)
    current.inverse()
    assert piecewise.is_equal(whole)
    return current


def _run_repeated_composition(iterations: int):
    chain = [parse_map(source) for source in _CHAIN_SOURCES]
    piecewise = parse_map("{ [k] -> [2k] : 0 <= k < 512 ; [k] -> [2k] : 512 <= k < 1024 }")
    whole = parse_map("{ [k] -> [2k] : 0 <= k < 1024 }")
    result = None
    for _ in range(iterations):
        result = _repeated_composition_round(chain, piecewise, whole)
    return result


def time_repeated_composition(iterations: int = 20):
    """Wall-clock the scenario with the cache disabled, then enabled (cold).

    Returns ``(disabled_seconds, enabled_seconds)``.  Used both by the
    pytest-benchmark entry below and by ``--smoke`` mode.
    """
    with opcache.disabled():
        started = time.perf_counter()
        _run_repeated_composition(iterations)
        disabled_seconds = time.perf_counter() - started
    opcache.reset()  # cold start: the cached run includes its own warmup
    started = time.perf_counter()
    _run_repeated_composition(iterations)
    enabled_seconds = time.perf_counter() - started
    return disabled_seconds, enabled_seconds


def bench_repeated_composition_cached(benchmark):
    opcache.reset()
    result = run_once(benchmark, _run_repeated_composition, 20, rounds=3)
    assert not result.is_empty()
    benchmark.extra_info["opcache_hits"] = opcache.stats().hits


def bench_repeated_composition_uncached(benchmark):
    def run():
        with opcache.disabled():
            return _run_repeated_composition(20)

    result = run_once(benchmark, run, rounds=3)
    assert not result.is_empty()


def bench_cache_ablation_speedup():
    """Non-timing assertion: the cache must keep its >= 1.5x win on this scenario."""
    disabled_seconds, enabled_seconds = time_repeated_composition()
    speedup = disabled_seconds / enabled_seconds if enabled_seconds else float("inf")
    assert speedup >= SPEEDUP_THRESHOLD, (
        f"operation cache speedup degraded to {speedup:.2f}x "
        f"(uncached {disabled_seconds:.3f} s vs cached {enabled_seconds:.3f} s)"
    )


# --------------------------------------------------------------------------- #
# Kernel ablation: flat-matrix kernel vs the original object-at-a-time code
# --------------------------------------------------------------------------- #
# Both modes produce bit-identical results (tests/unit/presburger/test_kernel.py
# gates that); this ablation measures what the flat layout buys.  The cache is
# disabled inside each timed leg so raw compute is compared, not memoization.
KERNEL_SPEEDUP_THRESHOLD = 1.5

_FEASIBILITY_SOURCES = (
    "{ [i] : exists a : 3a <= i and i <= 3a + 1 and 0 <= i < 12 }",
    "{ [i] : exists a : i = 2a and exists b : i = 3b and 0 <= i < 18 }",
    "{ [i] : exists a : i = 2a and 0 <= i < 64 }",
    "{ [i] : 0 <= i < 48 ; [i] : 50 <= i < 90 }",
)

_feasibility_sets = None


def _run_feasibility_sweep(rounds: int):
    """Set-algebra sweep over pre-parsed strided/dark-shadow sets.

    Parsing happens once (it costs the same in both kernel modes and would
    only dilute the ablation); the timed region is pure normalize /
    elimination / feasibility work.
    """
    global _feasibility_sets
    if _feasibility_sets is None:
        _feasibility_sets = [parse_set(source) for source in _FEASIBILITY_SOURCES]
    for _ in range(rounds):
        for a in _feasibility_sets:
            for b in _feasibility_sets:
                a.intersect(b).is_empty()
                a.subtract(b).is_empty()


def _run_kernel_workload(iterations: int) -> None:
    """Composition chains plus FM-heavy set algebra, uncached."""
    with opcache.disabled():
        _run_repeated_composition(iterations)
        _run_feasibility_sweep(iterations)


def time_kernel_ablation(iterations: int = 20):
    """Wall-clock the workload in object mode, then flat mode.

    Returns ``(object_seconds, flat_seconds)``.  One untimed warmup round
    per mode absorbs parser/intern-pool cold-start effects.
    """
    timings = {}
    for mode in ("object", "flat"):
        with kernel.use(mode):
            _run_kernel_workload(2)
            started = time.perf_counter()
            _run_kernel_workload(iterations)
            timings[mode] = time.perf_counter() - started
    return timings["object"], timings["flat"]


def bench_kernel_ablation_speedup():
    """Non-timing assertion: the flat kernel must keep its >= 1.5x win."""
    object_seconds, flat_seconds = time_kernel_ablation()
    speedup = object_seconds / flat_seconds if flat_seconds else float("inf")
    assert speedup >= KERNEL_SPEEDUP_THRESHOLD, (
        f"flat-kernel speedup degraded to {speedup:.2f}x "
        f"(object {object_seconds:.3f} s vs flat {flat_seconds:.3f} s)"
    )


# --------------------------------------------------------------------------- #
# Warm start: a second process reusing the persistent operation cache
# --------------------------------------------------------------------------- #
WARM_START_THRESHOLD = 2.0

#: Distinct closures/compositions/subtractions, all persistable ops, sized so
#: the cold leg is compute-dominated and the warm leg is sqlite-read-dominated.
_WARM_WORKLOAD_STEPS = 12


def _run_warm_workload() -> None:
    for i in range(1, _WARM_WORKLOAD_STEPS + 1):
        step = parse_map(
            "{ [i, j] -> [i + %d, j - 1] : 0 <= i < 64 and 1 <= j < 16 }" % i
        )
        closure, exact = transitive_closure(step)
        assert exact
        strided = parse_map(
            "{ [k] -> [k] : exists j : k = %dj and 0 <= k < 2048 }" % (i + 1)
        )
        identity = parse_map("{ [k] -> [k] : 0 <= k < 2048 }")
        assert not identity.subtract(strided).is_empty()


def _warm_child(persist_dir: str) -> int:
    """Child-process entry: run the workload against *persist_dir*, print seconds."""
    opcache.attach_persistent(persist_dir)
    started = time.perf_counter()
    _run_warm_workload()
    print(f"{time.perf_counter() - started:.6f}")
    return 0


def time_warm_start(persist_dir: str | None = None):
    """Run the warm workload in two fresh processes sharing one persist dir.

    Returns ``(cold_seconds, warm_seconds)``.  Fresh interpreters ensure the
    second run can only be warm through the disk tier, never through
    inherited in-memory state.
    """
    if persist_dir is None:
        persist_dir = tempfile.mkdtemp(prefix="repro-warmstart-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_OPCACHE_PERSIST_DIR", None)
    env.pop("REPRO_OPCACHE_DISABLE", None)

    def run_child() -> float:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--warm-child", persist_dir],
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(f"warm-start child failed:\n{proc.stderr}")
        return float(proc.stdout.strip().splitlines()[-1])

    return run_child(), run_child()


def bench_warm_start_speedup():
    """Non-timing assertion: a warm process must be >= 2x faster than cold."""
    cold_seconds, warm_seconds = time_warm_start()
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    assert speedup >= WARM_START_THRESHOLD, (
        f"warm-start speedup degraded to {speedup:.2f}x "
        f"(cold {cold_seconds:.3f} s vs warm {warm_seconds:.3f} s)"
    )


# --------------------------------------------------------------------------- #
# CLI smoke gates
# --------------------------------------------------------------------------- #
def _smoke_cache() -> int:
    disabled_seconds, enabled_seconds = time_repeated_composition()
    speedup = disabled_seconds / enabled_seconds if enabled_seconds else float("inf")
    stats = opcache.stats()
    print("[opcache ablation]")
    print(f"uncached : {disabled_seconds:.3f} s")
    print(f"cached   : {enabled_seconds:.3f} s  ({stats.hits} hit(s), {stats.misses} miss(es))")
    print(f"speedup  : {speedup:.2f}x  (threshold {SPEEDUP_THRESHOLD}x)")
    if speedup < SPEEDUP_THRESHOLD:
        print("FAIL: operation-cache speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _smoke_kernel() -> int:
    object_seconds, flat_seconds = time_kernel_ablation()
    speedup = object_seconds / flat_seconds if flat_seconds else float("inf")
    print("[kernel ablation]")
    print(f"object   : {object_seconds:.3f} s")
    print(f"flat     : {flat_seconds:.3f} s")
    print(f"speedup  : {speedup:.2f}x  (threshold {KERNEL_SPEEDUP_THRESHOLD}x)")
    if speedup < KERNEL_SPEEDUP_THRESHOLD:
        print("FAIL: flat-kernel speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _smoke_warm_start() -> int:
    cold_seconds, warm_seconds = time_warm_start()
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print("[warm start]")
    print(f"cold     : {cold_seconds:.3f} s")
    print(f"warm     : {warm_seconds:.3f} s")
    print(f"speedup  : {speedup:.2f}x  (threshold {WARM_START_THRESHOLD}x)")
    if speedup < WARM_START_THRESHOLD:
        print("FAIL: warm-start speedup below threshold", file=sys.stderr)
        return 1
    print("OK")
    return 0


def _smoke() -> int:
    """CI gate: run every ablation and fail loudly on any perf regression."""
    failures = 0
    for gate in (_smoke_cache, _smoke_kernel, _smoke_warm_start):
        failures += gate()
        print()
    return 1 if failures else 0


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--warm-child" in argv:
        sys.exit(_warm_child(argv[argv.index("--warm-child") + 1]))
    if "--warm-start" in argv:
        sys.exit(_smoke_warm_start())
    if "--kernel-ablation" in argv:
        sys.exit(_smoke_kernel())
    if "--smoke" in argv:
        sys.exit(_smoke())
    print(__doc__)
    print(
        "run under pytest for the full benchmark suite, or pass "
        "--smoke / --kernel-ablation / --warm-start"
    )
    sys.exit(2)
