"""Decision-backend comparison: the omega core vs the SMT-LIB2 path.

PR 8 second-sources the Presburger verdicts behind pluggable backends
(:mod:`repro.solvers`).  These benchmarks measure what that costs: the same
registered kernel check and the same raw decision-query corpus, decided by
the omega core, by the SMT-LIB2 emission path (through the bundled
``builtin`` interpreter — the worst case, since it round-trips text and
then decides with omega anyway), and by the differential ``crosscheck``
backend that runs both.

The committed trajectory snapshot lives in ``BENCH_solvers.json``
(regenerate with ``python tools/bench_snapshot.py --suite solvers``); its
deterministic half — per-backend verdicts and query counts — is the CI
drift gate, the timing half records the overhead story.
"""

import time

from repro.presburger import opcache, parse_set
from repro.solvers import CrossCheckBackend, OmegaBackend, SmtLibBackend
from repro.verifier import Verifier
from repro.verifier.options import CheckOptions
from repro.workloads import SMALL_KERNEL_PARAMS, kernel_pair

from conftest import run_once

BENCH_KERNEL = "fir"

QUERY_CORPUS = [
    "{ [i] : 0 <= i < 64 }",
    "{ [i] : exists a : i = 2a and 0 <= i < 64 }",
    "{ [i] : exists a : 3a <= i and i <= 3a + 1 and 0 <= i < 48 }",
    "{ [i, j] : 0 <= i < 16 and 0 <= j < 16 and i <= j }",
]


def _kernel_sources():
    pair = kernel_pair(BENCH_KERNEL, **SMALL_KERNEL_PARAMS.get(BENCH_KERNEL, {}))
    return pair.original, pair.transformed


def check_kernel(backend: str):
    """One cold kernel check under *backend*; returns the result."""
    original, transformed = _kernel_sources()
    opcache.reset()
    options = CheckOptions(backend=backend, smt_solver="builtin" if backend != "omega" else None)
    return Verifier(options=options).check(original, transformed)


def run_query_corpus(backend):
    """All pairwise binary queries of the corpus against *backend*."""
    sets = [parse_set(text) for text in QUERY_CORPUS]
    verdicts = []
    for a in sets:
        for b in sets:
            if a.arity != b.arity:
                continue
            verdicts.append(backend.is_subset(a.conjuncts, b.conjuncts))
            verdicts.append(backend.is_disjoint(a.conjuncts, b.conjuncts))
    return verdicts


def time_backend_kernel_checks():
    """(omega_seconds, smtlib_seconds, crosscheck_seconds) for one cold check each."""
    timings = []
    for backend in ("omega", "smtlib", "crosscheck"):
        started = time.perf_counter()
        result = check_kernel(backend)
        timings.append(time.perf_counter() - started)
        assert result.equivalent
    return tuple(timings)


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #
def bench_kernel_check_omega(benchmark):
    result = run_once(benchmark, check_kernel, "omega", rounds=3)
    assert result.equivalent


def bench_kernel_check_smtlib_builtin(benchmark):
    result = run_once(benchmark, check_kernel, "smtlib", rounds=3)
    assert result.equivalent
    assert sum(result.stats.solver_queries.values()) > 0


def bench_kernel_check_crosscheck(benchmark):
    result = run_once(benchmark, check_kernel, "crosscheck", rounds=3)
    assert result.equivalent
    assert result.stats.solver_queries.get("crosscheck.disagreements", 0) == 0


def bench_query_corpus_omega(benchmark):
    verdicts = run_once(benchmark, run_query_corpus, OmegaBackend(), rounds=3)
    assert any(verdicts)


def bench_query_corpus_smtlib_builtin(benchmark):
    opcache.reset()  # cold: memoized SMT replies would undercount the cost
    verdicts = run_once(benchmark, run_query_corpus, SmtLibBackend("builtin"), rounds=3)
    assert any(verdicts)


def bench_query_corpus_crosscheck(benchmark):
    opcache.reset()
    backend = CrossCheckBackend(OmegaBackend(), SmtLibBackend("builtin"))
    verdicts = run_once(benchmark, run_query_corpus, backend, rounds=3)
    assert any(verdicts)
    assert "crosscheck.disagreements" not in backend.query_counts
