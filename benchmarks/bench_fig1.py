"""Experiments E1 / E4 / E5 / E6: the paper's running example (Fig. 1, N = 1024).

Regenerates, with timings:

* E1  — the pairwise verdicts of the four versions,
* E4  — the basic method on (a) vs (b) (expression propagation + loop
        transformations only, Section 5.1),
* E5  — the extended method on (a) vs (c) (flattening + matching, Section 5.2),
* E6  — the diagnostics for (a) vs (d) (Section 6.1): statements v1/v3 and
        variable ``buf`` blamed, mismatch on the even output indices.
"""

import pytest

from repro.checker import DiagnosticKind, check_equivalence
from repro.workloads import fig1_program

from conftest import run_once

N = 1024


@pytest.fixture(scope="module")
def versions():
    return {name: fig1_program(name, N) for name in "abcd"}


def bench_e4_basic_method_a_vs_b(benchmark, versions, paper_threshold_seconds):
    result = run_once(benchmark, check_equivalence, versions["a"], versions["b"], method="basic", rounds=3)
    assert result.equivalent
    assert result.stats.paths_checked >= 8
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e5_extended_method_a_vs_c(benchmark, versions, paper_threshold_seconds):
    result = run_once(benchmark, check_equivalence, versions["a"], versions["c"], rounds=3)
    assert result.equivalent
    assert result.stats.flatten_operations > 0
    assert result.stats.matching_operations > 0
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e1_extended_method_b_vs_c(benchmark, versions):
    result = run_once(benchmark, check_equivalence, versions["b"], versions["c"], rounds=3)
    assert result.equivalent


def bench_e1_extended_method_a_vs_b(benchmark, versions):
    result = run_once(benchmark, check_equivalence, versions["a"], versions["b"], rounds=3)
    assert result.equivalent


def bench_e6_diagnose_a_vs_d(benchmark, versions, paper_threshold_seconds):
    result = run_once(benchmark, check_equivalence, versions["a"], versions["d"], rounds=3)
    assert not result.equivalent
    mismatches = result.diagnostics_of_kind(DiagnosticKind.MAPPING_MISMATCH)
    assert mismatches
    assert all(d.suspect_arrays == ("buf",) for d in mismatches)
    assert all({"v1", "v3"} <= set(d.suspect_statements) for d in mismatches)
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e1_basic_method_rejects_algebraic_pair(benchmark, versions):
    result = run_once(benchmark, check_equivalence, versions["a"], versions["c"], method="basic", rounds=3)
    assert not result.equivalent
