"""Experiment E7: timing of the basic method (Section 6.2 / reference [11]).

The earlier tool implementing the basic method (expression propagations and
loop transformations only) is reported to verify its examples "in the order of
only few seconds".  This harness times the basic method on pairs that do not
require algebraic laws: the paper's (a) vs (b), the ``downsample`` kernel, and
machine-generated transformation pipelines with algebraic rewrites disabled.
"""

import random

import pytest

from repro.checker import check_equivalence
from repro.transforms import apply_random_transforms
from repro.workloads import RandomProgramGenerator, fig1_program, kernel_pair

from conftest import run_once


def bench_e7_basic_fig1_a_vs_b(benchmark, paper_threshold_seconds):
    original = fig1_program("a", 1024)
    transformed = fig1_program("b", 1024)
    result = run_once(benchmark, check_equivalence, original, transformed, method="basic", rounds=3)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e7_basic_downsample_kernel(benchmark, paper_threshold_seconds):
    pair = kernel_pair("downsample", n=128)
    result = run_once(benchmark, check_equivalence, pair.original, pair.transformed, method="basic", rounds=3)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


@pytest.mark.parametrize("seed", [0, 1, 2])
def bench_e7_basic_generated_pipelines(benchmark, seed, paper_threshold_seconds):
    generator = RandomProgramGenerator(seed=seed, stages=5, size=64)
    original = generator.generate()
    transformed, _steps = apply_random_transforms(
        original, random.Random(seed), steps=4, allow_algebraic=False
    )
    result = run_once(benchmark, check_equivalence, original, transformed, method="basic", rounds=1)
    assert result.equivalent
    assert result.stats.elapsed_seconds < paper_threshold_seconds


def bench_e7_extended_overhead_on_basic_pair(benchmark):
    """Section 6.2: the extended method shows no significant degradation on
    pairs that the basic method already handles (here: same verdict, same
    order of magnitude of work)."""
    original = fig1_program("a", 1024)
    transformed = fig1_program("b", 1024)

    def both():
        basic = check_equivalence(original, transformed, method="basic")
        extended = check_equivalence(original, transformed, method="extended")
        return basic, extended

    basic, extended = run_once(benchmark, both, rounds=1)
    assert basic.equivalent and extended.equivalent
    # "No significant degradation": within an order of magnitude.
    assert extended.stats.elapsed_seconds < 10 * max(basic.stats.elapsed_seconds, 0.01)
