#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 with a small regex parser.

This is the gate behind ``repro-eqcheck stats --prom`` in CI and in the unit
tests: the server's exposition must stay parseable by a real scraper, so we
check the things a scrape actually breaks on rather than re-implementing the
whole grammar.

Checked per line:

- ``# HELP <name> <text>`` / ``# TYPE <name> <counter|gauge|histogram|
  summary|untyped>`` comment shape;
- metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*``;
- label blocks parse (names, quoted values, only ``\\\\`` / ``\\n`` / ``\\"``
  escapes);
- sample values are floats, ``+Inf``, ``-Inf`` or ``NaN``.

Checked per metric family:

- at most one HELP and one TYPE line, and TYPE precedes every sample;
- a family typed ``histogram`` carries a ``+Inf`` ``_bucket``, ``_sum`` and
  ``_count``, and its cumulative bucket counts never decrease.

Usage::

    python tools/prom_lint.py [FILE]      # defaults to stdin

Exit status: 0 when the exposition is clean, 1 otherwise (problems are
listed on stderr).  Import :func:`validate` for programmatic use.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List, Optional, Tuple

__all__ = ["validate", "main"]

METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
VALUE = re.compile(r"(?:[+-]?Inf|NaN|[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\Z")
HELP_LINE = re.compile(r"# HELP (\S+) ?(.*)\Z")
TYPE_LINE = re.compile(r"# TYPE (\S+) (counter|gauge|histogram|summary|untyped)\Z")
SAMPLE_LINE = re.compile(r"(\S+?)(\{.*\})? (\S+)( \d+)?\Z")

#: The sample suffixes that belong to the family of a histogram/summary TYPE.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def _family_of(sample_name: str) -> str:
    for suffix in FAMILY_SUFFIXES:
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def _parse_labels(block: str) -> Optional[Dict[str, str]]:
    """Parse ``{a="x",b="y"}`` (escapes included); None on malformed input."""
    inner = block[1:-1]
    labels: Dict[str, str] = {}
    position = 0
    while position < len(inner):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', inner[position:])
        if not match:
            return None
        name = match.group(1)
        position += match.end()
        value_chars: List[str] = []
        while position < len(inner):
            char = inner[position]
            if char == "\\":
                if position + 1 >= len(inner) or inner[position + 1] not in ('\\', 'n', '"'):
                    return None
                value_chars.append(inner[position + 1])
                position += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            position += 1
        else:
            return None
        labels[name] = "".join(value_chars)
        position += 1  # the closing quote
        if position < len(inner):
            if inner[position] != ",":
                return None
            position += 1
    return labels


def validate(text: str) -> List[str]:
    """Return the list of format problems in *text* (empty when clean)."""
    problems: List[str] = []
    helped: Dict[str, int] = {}
    typed: Dict[str, Tuple[int, str]] = {}
    sampled: Dict[str, int] = {}
    # histogram family -> list of (le, count) in file order, plus sum/count flags
    histograms: Dict[str, Dict[str, object]] = {}

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            help_match = HELP_LINE.match(line)
            type_match = TYPE_LINE.match(line)
            if help_match:
                name = help_match.group(1)
                if not METRIC_NAME.match(name):
                    problems.append(f"line {number}: invalid metric name in HELP: {name!r}")
                if name in helped:
                    problems.append(
                        f"line {number}: duplicate HELP for {name} (first at line {helped[name]})"
                    )
                helped.setdefault(name, number)
            elif type_match:
                name, kind = type_match.group(1), type_match.group(2)
                if not METRIC_NAME.match(name):
                    problems.append(f"line {number}: invalid metric name in TYPE: {name!r}")
                if name in typed:
                    problems.append(
                        f"line {number}: duplicate TYPE for {name} "
                        f"(first at line {typed[name][0]})"
                    )
                elif name in sampled:
                    problems.append(
                        f"line {number}: TYPE for {name} after its first sample "
                        f"(line {sampled[name]})"
                    )
                typed.setdefault(name, (number, kind))
                if kind == "histogram":
                    histograms.setdefault(
                        name, {"buckets": [], "has_sum": False, "has_count": False}
                    )
            elif line.startswith("# HELP") or line.startswith("# TYPE"):
                problems.append(f"line {number}: malformed comment: {line!r}")
            continue

        match = SAMPLE_LINE.match(line)
        if not match:
            problems.append(f"line {number}: unparseable sample: {line!r}")
            continue
        name, label_block, value = match.group(1), match.group(2), match.group(3)
        if not METRIC_NAME.match(name):
            problems.append(f"line {number}: invalid metric name: {name!r}")
            continue
        labels: Dict[str, str] = {}
        if label_block:
            parsed = _parse_labels(label_block)
            if parsed is None:
                problems.append(f"line {number}: malformed label block: {label_block!r}")
                continue
            labels = parsed
            for label in labels:
                if not LABEL_NAME.match(label) or label.startswith("__"):
                    problems.append(f"line {number}: invalid label name: {label!r}")
        if not VALUE.match(value):
            problems.append(f"line {number}: invalid sample value: {value!r}")
            continue
        family = _family_of(name)
        sampled.setdefault(name, number)
        sampled.setdefault(family, number)
        state = histograms.get(family)
        if state is not None:
            if name == family + "_bucket":
                if "le" not in labels:
                    problems.append(f"line {number}: histogram bucket without an 'le' label")
                else:
                    state["buckets"].append((number, labels["le"], float(value)))
            elif name == family + "_sum":
                state["has_sum"] = True
            elif name == family + "_count":
                state["has_count"] = True

    for family, state in sorted(histograms.items()):
        buckets = state["buckets"]
        if not buckets:
            problems.append(f"histogram {family}: no _bucket samples")
            continue
        if not any(le == "+Inf" for _, le, _ in buckets):
            problems.append(f"histogram {family}: missing the +Inf bucket")
        if not state["has_sum"]:
            problems.append(f"histogram {family}: missing {family}_sum")
        if not state["has_count"]:
            problems.append(f"histogram {family}: missing {family}_count")
        previous = None
        for number, le, count in buckets:
            if previous is not None and count < previous:
                problems.append(
                    f"line {number}: histogram {family} bucket le={le} count {count} "
                    f"is below the previous bucket ({previous}) — buckets must be cumulative"
                )
            previous = count

    return problems


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) > 1:
        print("usage: prom_lint.py [FILE]", file=sys.stderr)
        return 2
    if argv and argv[0] != "-":
        with open(argv[0], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()
    problems = validate(text)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} exposition problem(s)", file=sys.stderr)
        return 1
    families = {line.split()[2] for line in text.splitlines() if line.startswith("# TYPE ")}
    print(f"exposition ok: {len(families)} metric families")
    return 0


if __name__ == "__main__":
    sys.exit(main())
