#!/usr/bin/env python3
"""Check that intra-repo markdown links in docs/ and README.md resolve.

Scans every ``[text](target)`` link in the repo's markdown documentation and
fails when a *relative* target (optionally with a ``#fragment``) does not
exist on disk, resolving targets against the file that contains the link.
External links (``http://``, ``https://``, ``mailto:``) are ignored — CI
must not flake on third-party outages.

Usage::

    python tools/check_docs_links.py [root]

Exit status: 0 when every internal link resolves, 1 otherwise (broken links
are listed on stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(root: Path):
    yield from sorted(root.glob("docs/**/*.md"))
    readme = root / "README.md"
    if readme.exists():
        yield readme


def check_file(path: Path, root: Path) -> list:
    """Return ``(source, target)`` pairs for every broken link in *path*."""
    broken = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: shell snippets legitimately contain [x](y)-
    # shaped strings that are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_PATTERN.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            broken.append((path.relative_to(root), target))
    return broken


def main(argv) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    broken = []
    checked = 0
    for markdown in iter_markdown_files(root):
        checked += 1
        broken.extend(check_file(markdown, root))
    if broken:
        for source, target in broken:
            print(f"BROKEN LINK: {source}: {target}", file=sys.stderr)
        return 1
    print(f"ok: internal links resolve in {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
