#!/usr/bin/env python3
"""Regenerate or check the committed perf-trajectory snapshots (BENCH_*.json).

The repo commits one JSON snapshot per benchmark suite so that the
performance story of the checker is part of its history, reviewable in every
PR that moves the numbers:

* ``BENCH_presburger.json`` — the repeated-composition operation-cache
  ablation of ``benchmarks/bench_presburger.py``;
* ``BENCH_verifier.json`` — the session-reuse variant corpus of
  ``benchmarks/bench_verifier.py`` (seed 7, 12 variants);
* ``BENCH_service.json`` — a serial batch over the built-in corpus
  (generated + buggy pairs, seed 0);
* ``BENCH_solvers.json`` — the decision-backend comparison of
  ``benchmarks/bench_solvers.py`` (omega vs SMT-LIB2 vs crosscheck on the
  ``fir`` kernel).

Each snapshot splits into two sub-objects:

* ``"deterministic"`` — work counters and verdicts that must reproduce
  exactly on any machine (verdicts, compare calls, tabling and operation
  cache hits/misses, ...).  ``--check`` recomputes the suites and fails on
  any drift here, which makes silent behavioural regressions (a cache that
  stopped hitting, a traversal doing double work) a CI failure.
* ``"timing"`` — wall-clock measurements, recorded for the human trajectory
  but machine-dependent and therefore ignored by ``--check``.

Usage::

    python tools/bench_snapshot.py              # regenerate all three
    python tools/bench_snapshot.py --check      # CI drift gate
    python tools/bench_snapshot.py --suite verifier
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, os.path.join(ROOT, "benchmarks"))

SCHEMA_VERSION = 1

# The shapes must match the committed snapshots; bump deliberately (the
# resulting --check drift is the signal that the trajectory moved).
PRESBURGER_ITERATIONS = 20
VERIFIER_SEED = 7
VERIFIER_VARIANTS = 12
SERVICE_SPEC = dict(generated=6, buggy=2, seed=0, size=16, transform_steps=2)


def _per_op_dict(stats) -> dict:
    return {
        op: {"hits": hits, "misses": misses}
        for op, (hits, misses) in sorted(stats.per_op.items())
    }


def snapshot_presburger() -> dict:
    """The operation-cache, kernel and warm-start ablations, counters cold."""
    import tempfile

    from repro.presburger import kernel, opcache
    import bench_presburger

    opcache.reset()
    disabled_seconds, enabled_seconds = bench_presburger.time_repeated_composition(
        PRESBURGER_ITERATIONS
    )
    # A separate cold cached run for the deterministic counters, so timing
    # warmup does not leak into them.
    opcache.reset()
    before = opcache.stats().copy()
    bench_presburger._run_repeated_composition(PRESBURGER_ITERATIONS)
    delta = opcache.stats().delta(before)
    speedup = disabled_seconds / enabled_seconds if enabled_seconds else 0.0

    # Kernel ablation: flat-matrix kernel vs the object-at-a-time baseline.
    object_seconds, flat_seconds = bench_presburger.time_kernel_ablation(
        PRESBURGER_ITERATIONS
    )
    kernel_speedup = object_seconds / flat_seconds if flat_seconds else 0.0

    # Warm start: two fresh processes sharing one persistent cache directory,
    # plus an in-process cold pass for the deterministic disk-write count.
    cold_seconds, warm_seconds = bench_presburger.time_warm_start()
    warm_speedup = cold_seconds / warm_seconds if warm_seconds else 0.0
    with tempfile.TemporaryDirectory(prefix="repro-bench-persist-") as tmp:
        opcache.attach_persistent(tmp)
        try:
            opcache.reset()
            before = opcache.stats().copy()
            bench_presburger._run_warm_workload()
            persist_delta = opcache.stats().delta(before)
        finally:
            opcache.detach_persistent()
            opcache.reset()

    return {
        "deterministic": {
            "iterations": PRESBURGER_ITERATIONS,
            "opcache_hits": delta.hits,
            "opcache_misses": delta.misses,
            "intern_hits": delta.intern_hits,
            "intern_misses": delta.intern_misses,
            "per_op": _per_op_dict(delta),
            "kernel_fingerprint": kernel.fingerprint(),
            "warm_workload_disk_writes": persist_delta.disk_writes,
            "warm_workload_disk_hits": persist_delta.disk_hits,
        },
        "timing": {
            "uncached_seconds": round(disabled_seconds, 6),
            "cached_seconds": round(enabled_seconds, 6),
            "speedup": round(speedup, 3),
            "kernel_object_seconds": round(object_seconds, 6),
            "kernel_flat_seconds": round(flat_seconds, 6),
            "kernel_speedup": round(kernel_speedup, 3),
            "warm_cold_seconds": round(cold_seconds, 6),
            "warm_warm_seconds": round(warm_seconds, 6),
            "warm_speedup": round(warm_speedup, 3),
        },
    }


def snapshot_verifier() -> dict:
    """The session-reuse corpus: one original, N transformed variants."""
    from repro.lang import program_to_text
    from repro.presburger import opcache
    from repro.verifier import Verifier
    from repro.workloads import RandomProgramGenerator

    generator = RandomProgramGenerator(seed=VERIFIER_SEED, stages=4, size=24)
    pairs = generator.generate_variants(VERIFIER_VARIANTS, transform_steps=2)
    original_text = program_to_text(pairs[0].original)
    variant_texts = [program_to_text(pair.transformed) for pair in pairs]

    opcache.reset()
    verifier = Verifier()
    started = time.perf_counter()
    results = [verifier.check(original_text, text) for text in variant_texts]
    total_seconds = time.perf_counter() - started

    def total(field: str) -> int:
        return sum(getattr(result.stats, field) for result in results)

    return {
        "deterministic": {
            "seed": VERIFIER_SEED,
            "variants": VERIFIER_VARIANTS,
            "verdicts": [bool(result.equivalent) for result in results],
            "compare_calls": total("compare_calls"),
            "paths_checked": total("paths_checked"),
            "table_hits": total("table_hits"),
            "opcache_hits": total("opcache_hits"),
            "opcache_misses": total("opcache_misses"),
            "compile_hits": verifier.compile_hits,
            "compile_misses": verifier.compile_misses,
        },
        "timing": {
            "total_seconds": round(total_seconds, 6),
            "mean_seconds_per_check": round(total_seconds / len(results), 6),
        },
    }


def snapshot_service() -> dict:
    """A serial batch over the built-in corpus, summarised by the service layer."""
    from repro.presburger import opcache
    from repro.service import BatchExecutor, CorpusSpec, aggregate_results, build_corpus

    jobs = build_corpus(CorpusSpec(**SERVICE_SPEC))
    opcache.reset()
    executor = BatchExecutor(cache=None, workers=1)
    started = time.perf_counter()
    results = executor.run(jobs)
    total_seconds = time.perf_counter() - started
    summary = aggregate_results(results)
    server, server_timing = _snapshot_service_server(jobs)
    return {
        "deterministic": {
            "spec": dict(SERVICE_SPEC),
            "jobs": summary["total_jobs"],
            "by_status": dict(summary["by_status"]),
            "equivalent": summary["equivalent"],
            "not_equivalent": summary["not_equivalent"],
            "expectation_mismatches": list(summary["expectation_mismatches"]),
            "opcache_hits": summary["opcache"]["hits"],
            "opcache_misses": summary["opcache"]["misses"],
            "server": server,
        },
        "timing": {
            "total_seconds": round(total_seconds, 6),
            "mean_seconds_per_job": round(summary["timing"]["mean_seconds"], 6),
            **server_timing,
        },
    }


def _snapshot_service_server(jobs):
    """The same corpus through a fully observed in-process daemon, twice.

    One serial client, one worker, debug-level request log and a zero slow
    threshold: every counter below is a pure function of the corpus, so the
    block belongs in the drift-gated ``deterministic`` section.  The second
    pass must be answered entirely from the verdict cache.
    """
    import collections
    import tempfile

    from repro.server import ServerClient, ServerConfig, ServerThread
    from repro.telemetry.live import iter_jsonl

    with tempfile.TemporaryDirectory(prefix="eqcheck-bench-snapshot-") as directory:
        log_path = os.path.join(directory, "requests.jsonl")
        config = ServerConfig(
            port=0,
            workers=1,
            log_path=log_path,
            log_level="debug",
            slow_threshold=0.0,
        )
        with ServerThread(config) as handle:
            with ServerClient(handle.address) as client:
                client.run_jobs(jobs, timeout=120.0)
                started = time.perf_counter()
                client.run_jobs(jobs, timeout=120.0)
                warm_seconds = time.perf_counter() - started
                snap = client.stats()
        kinds = collections.Counter(event["event"] for event in iter_jsonl(log_path))
    server = {
        "passes": 2,
        "requests": snap["requests"],
        "checks_executed": snap["checks_executed"],
        "verdict_cache_hits": snap["cache_hits"],
        "dedup_hits": snap["dedup_hits"],
        "errors": snap["errors"],
        "rejected": snap["rejected"],
        "session_entries": snap["session_entries"],
        "slow_captured": snap["slow"]["captured"],
        "log_events": dict(sorted(kinds.items())),
    }
    timing = {"server_warm_pass_seconds": round(warm_seconds, 6)}
    return server, timing


def snapshot_solvers() -> dict:
    """The decision-backend comparison: same kernel, three backends."""
    import bench_solvers

    timings = {}
    results = {}
    for backend in ("omega", "smtlib", "crosscheck"):
        started = time.perf_counter()
        results[backend] = bench_solvers.check_kernel(backend)
        timings[backend] = time.perf_counter() - started
    crosscheck_counts = dict(results["crosscheck"].stats.solver_queries)
    omega_seconds = timings["omega"]
    return {
        "deterministic": {
            "kernel": bench_solvers.BENCH_KERNEL,
            "verdicts": {
                backend: bool(result.equivalent) for backend, result in results.items()
            },
            "smtlib_queries": dict(results["smtlib"].stats.solver_queries),
            "crosscheck_queries": crosscheck_counts,
            "disagreements": crosscheck_counts.get("crosscheck.disagreements", 0),
        },
        "timing": {
            "omega_seconds": round(timings["omega"], 6),
            "smtlib_seconds": round(timings["smtlib"], 6),
            "crosscheck_seconds": round(timings["crosscheck"], 6),
            "crosscheck_overhead": (
                round(timings["crosscheck"] / omega_seconds, 3) if omega_seconds else 0.0
            ),
        },
    }


SUITES = {
    "presburger": snapshot_presburger,
    "verifier": snapshot_verifier,
    "service": snapshot_service,
    "solvers": snapshot_solvers,
}


def _diff_lines(expected: dict, actual: dict, prefix: str = "") -> list:
    lines = []
    for key in sorted(set(expected) | set(actual)):
        left, right = expected.get(key), actual.get(key)
        if left == right:
            continue
        if isinstance(left, dict) and isinstance(right, dict):
            lines.extend(_diff_lines(left, right, prefix + key + "."))
        else:
            lines.append(f"  {prefix}{key}: committed {left!r} -> recomputed {right!r}")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="recompute and compare the deterministic fields against the "
        "committed snapshots instead of rewriting them (CI drift gate)",
    )
    parser.add_argument(
        "--suite",
        action="append",
        choices=sorted(SUITES),
        default=None,
        help="restrict to the given suite (repeatable; default: all)",
    )
    parser.add_argument(
        "--output-dir",
        default=ROOT,
        metavar="DIR",
        help="directory of the BENCH_*.json files (default: the repo root)",
    )
    args = parser.parse_args(argv)

    failed = False
    for name in args.suite or sorted(SUITES):
        path = os.path.join(args.output_dir, f"BENCH_{name}.json")
        data = {"schema": SCHEMA_VERSION, "suite": name, **SUITES[name]()}
        if args.check:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    committed = json.load(handle)
            except (OSError, ValueError) as error:
                print(f"{name}: cannot read {path}: {error}", file=sys.stderr)
                failed = True
                continue
            drift = _diff_lines(
                committed.get("deterministic", {}), data["deterministic"]
            )
            if drift:
                print(f"{name}: DRIFT in deterministic fields ({path}):")
                print("\n".join(drift))
                print(
                    "  (intentional? regenerate with: python tools/bench_snapshot.py"
                    f" --suite {name})"
                )
                failed = True
            else:
                print(f"{name}: ok ({path})")
        else:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(data, handle, indent=2, sort_keys=True)
                handle.write("\n")
            timing = ", ".join(f"{k} {v}" for k, v in sorted(data["timing"].items()))
            print(f"{name}: wrote {path}  ({timing})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
